//! DES determinism: `Sim::run` must produce the same `SimResult` on
//! repeated runs and under permuted task-insertion order, with and
//! without an active fault plan (same seed ⇒ same schedule). This is
//! what makes fault-injection experiments reproducible and lets the
//! resilience tests assert exact equalities.

use regent_fault::{FaultPlan, RetryPolicy};
use regent_machine::{
    simulate_cr_resilient, simulate_implicit, MachineConfig, PhaseSpec, ResilienceSpec, Sim,
    SimResult, TimestepSpec,
};
use regent_trace::SimKind;

/// A small two-resource workload: per (node, step) one Copy feeding
/// one Compute, with cross-step chains. `order` permutes the insertion
/// order of the (node, step) cells; the logical DAG and the tags are
/// identical for every permutation.
fn build(order: &[(u32, u32)], plan: Option<&FaultPlan>) -> SimResult {
    let mut sim = Sim::new();
    let nic = sim.add_resource(2);
    let core = sim.add_resource(4);
    // BTreeMap: the chain-dependency insertion order below must itself
    // be deterministic for the permutation assertions to be meaningful.
    let mut cells = std::collections::BTreeMap::new();
    for &(node, step) in order {
        let c = sim.add_task_delayed(nic, 1e-6 * (node + 1) as f64, 1e-6);
        sim.tag(c, SimKind::Copy, node, step);
        let t = sim.add_task(core, 1e-5 * (step + 1) as f64);
        sim.tag(t, SimKind::Compute, node, step);
        sim.add_dep(c, t);
        cells.insert((node, step), (c, t));
    }
    // Chain steps: each cell's compute waits on the same node's
    // previous-step compute (insertion-order independent).
    for (&(node, step), &(_, t)) in &cells {
        if step > 0 {
            if let Some(&(_, prev)) = cells.get(&(node, step - 1)) {
                sim.add_dep(prev, t);
            }
        }
    }
    if let Some(p) = plan {
        sim.set_faults(p.clone(), RetryPolicy::default());
    }
    sim.run()
}

fn grid(nodes: u32, steps: u32) -> Vec<(u32, u32)> {
    (0..nodes)
        .flat_map(|n| (0..steps).map(move |s| (n, s)))
        .collect()
}

/// A deterministic permutation (SplitMix64-keyed sort — no external
/// RNG, no banned `Math.random` analogue).
fn permuted(mut v: Vec<(u32, u32)>, seed: u64) -> Vec<(u32, u32)> {
    v.sort_by_key(|&(n, s)| regent_fault::splitmix64(seed ^ ((n as u64) << 32) ^ s as u64));
    v
}

fn assert_same(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan");
    assert_eq!(a.busy_time, b.busy_time, "{what}: busy_time");
    assert_eq!(a.faults, b.faults, "{what}: fault stats");
}

#[test]
fn repeated_runs_identical_without_faults() {
    let order = grid(4, 5);
    let a = build(&order, None);
    let b = build(&order, None);
    assert_same(&a, &b, "fault-free repeat");
    assert_eq!(a.finish_times, b.finish_times);
}

#[test]
fn repeated_runs_identical_with_faults() {
    let plan = FaultPlan::new(1234)
        .with_loss_rate(0.3)
        .with_dup_rate(0.1)
        .with_delay(0.1, 1e-4)
        .slow_node(1, 0.0, 1.0, 2.0);
    let order = grid(4, 5);
    let a = build(&order, Some(&plan));
    let b = build(&order, Some(&plan));
    assert_same(&a, &b, "faulted repeat");
    assert_eq!(a.finish_times, b.finish_times);
    assert!(a.faults.messages_lost > 0, "plan should have bitten");
}

#[test]
fn insertion_order_does_not_change_schedule() {
    let base = grid(4, 5);
    let a = build(&base, None);
    for seed in 0..4 {
        let b = build(&permuted(base.clone(), seed), None);
        assert_same(&a, &b, "fault-free permutation");
    }
}

#[test]
fn insertion_order_does_not_change_faulted_schedule() {
    // Fault decisions are keyed on (kind, node, step, occurrence), not
    // on task ids, so permuting construction order must not re-roll
    // any message's fate.
    let plan = FaultPlan::new(77).with_loss_rate(0.25).with_dup_rate(0.1);
    let base = grid(4, 5);
    let a = build(&base, Some(&plan));
    assert!(a.faults.messages_lost > 0);
    for seed in 0..4 {
        let b = build(&permuted(base.clone(), seed), Some(&plan));
        assert_same(&a, &b, "faulted permutation");
    }
}

#[test]
fn different_seed_different_schedule() {
    let base = grid(6, 6);
    let a = build(&base, Some(&FaultPlan::new(1).with_loss_rate(0.3)));
    let b = build(&base, Some(&FaultPlan::new(2).with_loss_rate(0.3)));
    assert_ne!(
        a.faults.messages_lost, b.faults.messages_lost,
        "distinct seeds should produce distinct loss patterns"
    );
}

#[test]
fn resilient_scenario_is_deterministic() {
    let machine = MachineConfig::piz_daint(4);
    let spec = TimestepSpec {
        num_nodes: 4,
        elements_per_node: 1000,
        phases: vec![PhaseSpec {
            name: "w".into(),
            tasks_per_node: 3,
            task_compute_s: 1e-4,
            copies: vec![],
            collective: true,
            consumes_collective: false,
        }],
    };
    let rspec = ResilienceSpec {
        plan: FaultPlan::new(5).crash_shard(2, 3).with_loss_rate(0.1),
        ckpt_interval: 2,
        ..ResilienceSpec::default()
    };
    let a = simulate_cr_resilient(&machine, &spec, 6, &rspec);
    let b = simulate_cr_resilient(&machine, &spec, 6, &rspec);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.goodput_per_node, b.goodput_per_node);
    assert_eq!(a.faults, b.faults);
    // And the implicit model stays deterministic too.
    let c = simulate_implicit(&machine, &spec, 3);
    let d = simulate_implicit(&machine, &spec, 3);
    assert_eq!(c.makespan, d.makespan);
}
