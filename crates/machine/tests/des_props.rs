//! Property tests for the discrete-event engine: on random DAGs over
//! random resources, the schedule must respect dependencies, resource
//! capacity bounds, and the standard makespan lower bounds.
//!
//! Gated behind the `proptest-tests` cargo feature: proptest is not
//! part of the offline dependency set, so the default `cargo test`
//! skips this file (see the workspace Cargo.toml for how to restore
//! the dev-dependency).

#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use regent_machine::{Sim, SimTaskId};

#[derive(Debug, Clone)]
struct RandomDag {
    /// Resource capacities.
    resources: Vec<u32>,
    /// (resource index, duration, completion delay).
    tasks: Vec<(usize, f64, f64)>,
    /// Edges (i, j) with i < j (acyclic by construction).
    edges: Vec<(usize, usize)>,
}

fn arb_dag() -> impl Strategy<Value = RandomDag> {
    (
        prop::collection::vec(1u32..4, 1..4),
        prop::collection::vec((0usize..100, 0.0f64..5.0, 0.0f64..1.0), 1..40),
    )
        .prop_flat_map(|(resources, mut tasks)| {
            let nr = resources.len();
            for t in &mut tasks {
                t.0 %= nr;
            }
            let nt = tasks.len();
            let edges = prop::collection::vec((0usize..nt.max(1), 0usize..nt.max(1)), 0..60)
                .prop_map(move |mut es| {
                    es.retain(|(a, b)| a != b);
                    let es: Vec<(usize, usize)> = es
                        .into_iter()
                        .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                        .collect();
                    es
                });
            (Just(resources), Just(tasks), edges)
        })
        .prop_map(|(resources, tasks, edges)| RandomDag {
            resources,
            tasks,
            edges,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn schedule_is_feasible(dag in arb_dag()) {
        let mut sim = Sim::new();
        let rids: Vec<_> = dag.resources.iter().map(|&s| sim.add_resource(s)).collect();
        let tids: Vec<SimTaskId> = dag
            .tasks
            .iter()
            .map(|&(r, d, cd)| sim.add_task_delayed(rids[r], d, cd))
            .collect();
        let mut dedup = std::collections::HashSet::new();
        for &(a, b) in &dag.edges {
            if dedup.insert((a, b)) {
                sim.add_dep(tids[a], tids[b]);
            }
        }
        let result = sim.run();

        // 1. Dependencies respected: succ finish ≥ pred finish + succ's
        //    duration.
        for &(a, b) in &dag.edges {
            let fa = result.finish_times[a];
            let fb = result.finish_times[b];
            let (_, db, cb) = dag.tasks[b];
            prop_assert!(
                fb + 1e-9 >= fa + db + cb,
                "edge ({a},{b}): {fa} -> {fb}, dur {db}"
            );
        }

        // 2. Makespan ≥ every task's own span.
        for (i, &(_, d, cd)) in dag.tasks.iter().enumerate() {
            prop_assert!(result.finish_times[i] + 1e-9 >= d + cd);
            prop_assert!(result.makespan + 1e-9 >= result.finish_times[i]);
        }

        // 3. Resource capacity: busy time ≤ makespan × servers, and
        //    busy time == Σ durations on that resource.
        for (ri, &servers) in dag.resources.iter().enumerate() {
            let total: f64 = dag
                .tasks
                .iter()
                .filter(|&&(r, _, _)| r == ri)
                .map(|&(_, d, _)| d)
                .sum();
            prop_assert!((result.busy_time[ri] - total).abs() < 1e-6);
            if total > 0.0 {
                prop_assert!(
                    result.busy_time[ri] <= result.makespan * servers as f64 + 1e-6,
                    "resource {ri} over capacity"
                );
            }
        }

        // 4. Makespan ≥ work bound: max over resources of
        //    total/(servers).
        for (ri, &servers) in dag.resources.iter().enumerate() {
            let total: f64 = dag
                .tasks
                .iter()
                .filter(|&&(r, _, _)| r == ri)
                .map(|&(_, d, _)| d)
                .sum();
            prop_assert!(result.makespan + 1e-6 >= total / servers as f64);
        }
    }

    #[test]
    fn deterministic_replay(dag in arb_dag()) {
        let build = || {
            let mut sim = Sim::new();
            let rids: Vec<_> = dag.resources.iter().map(|&s| sim.add_resource(s)).collect();
            let tids: Vec<SimTaskId> = dag
                .tasks
                .iter()
                .map(|&(r, d, cd)| sim.add_task_delayed(rids[r], d, cd))
                .collect();
            let mut dedup = std::collections::HashSet::new();
            for &(a, b) in &dag.edges {
                if dedup.insert((a, b)) {
                    sim.add_dep(tids[a], tids[b]);
                }
            }
            sim.run()
        };
        let r1 = build();
        let r2 = build();
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.finish_times, r2.finish_times);
    }
}
