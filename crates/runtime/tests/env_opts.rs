//! `ResilienceOptions::from_env` parsing: the CI smoke hooks
//! (`REGENT_FAULT_SEED`, `REGENT_CORRUPT`) must never panic on
//! malformed values — they fall back to "disabled" cleanly.
//!
//! Environment variables are process-global, so every case lives in
//! one sequential `#[test]` in its own binary (cargo runs test
//! binaries one at a time, so no concurrent test can observe the
//! temporary settings).

use regent_runtime::ResilienceOptions;

#[test]
fn from_env_parsing_edge_cases() {
    let clear = || {
        std::env::remove_var("REGENT_FAULT_SEED");
        std::env::remove_var("REGENT_CORRUPT");
    };
    clear();
    assert!(
        ResilienceOptions::from_env(4).is_none(),
        "no env vars ⇒ disabled"
    );

    // Corruption alone arms the integrity layer with a crash-free plan.
    std::env::set_var("REGENT_CORRUPT", "7,0.25");
    let o = ResilienceOptions::from_env(4).expect("REGENT_CORRUPT arms resilience");
    assert!(o.integrity);
    assert_eq!(o.plan.corrupt_rate, 0.25);
    assert!(
        o.plan.crash_schedule().is_empty(),
        "no crash without a fault seed"
    );

    // Fault seed and corruption compose into one plan.
    std::env::set_var("REGENT_FAULT_SEED", "5");
    let o = ResilienceOptions::from_env(4).expect("both vars set");
    assert!(o.integrity);
    assert_eq!(o.plan.corrupt_rate, 0.25);
    assert!(!o.plan.crash_schedule().is_empty(), "seeded crash present");

    // Malformed corruption specs are ignored; the fault seed stays in
    // effect and nothing panics.
    for bad in [
        "", "abc", "7", "7,", ",0.5", "7,abc", "7,-0.1", "7,1.5", "7,NaN", "7,inf", "7;0.5",
    ] {
        std::env::set_var("REGENT_CORRUPT", bad);
        let o = ResilienceOptions::from_env(4).expect("fault seed still set");
        assert!(!o.integrity, "spec {bad:?} must not arm integrity");
        assert_eq!(o.plan.corrupt_rate, 0.0, "spec {bad:?} must not set a rate");
    }

    // Malformed fault seed alone: disabled entirely, no panic.
    std::env::remove_var("REGENT_CORRUPT");
    for bad in ["", "abc", "1.5", "-3", "99999999999999999999999999"] {
        std::env::set_var("REGENT_FAULT_SEED", bad);
        assert!(
            ResilienceOptions::from_env(4).is_none(),
            "seed {bad:?} must fall back to disabled"
        );
    }

    // Whitespace around a valid seed is tolerated.
    std::env::set_var("REGENT_FAULT_SEED", " 42 ");
    assert!(ResilienceOptions::from_env(4).is_some());

    // Degenerate shard counts must not divide by zero anywhere.
    std::env::set_var("REGENT_CORRUPT", "3,0.5");
    let o = ResilienceOptions::from_env(0).expect("still armed at 0 shards");
    assert!(o.integrity);
    let _ = ResilienceOptions::from_env(1).expect("armed at 1 shard");

    clear();
}
