//! Property tests for the flat-combining launch log: however appends
//! are interleaved across producers and combine points, the consumed
//! sequence is exactly the deterministic flat-combining order — FIFO
//! per producer, producers drained in slot order at each combine, and
//! rewinding a cursor replays the identical suffix.
//!
//! Gated behind the `proptest-tests` cargo feature: proptest is not
//! part of the offline dependency set, so the default `cargo test`
//! skips this file (see the workspace Cargo.toml for how to restore
//! the dev-dependency).

#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use regent_runtime::{LaunchLog, LogCursor};

/// Drains everything published so far (the log must be sealed).
fn drain(log: &LaunchLog<u32>) -> Vec<Vec<u32>> {
    let mut cursor = LogCursor::new();
    let mut out = Vec::new();
    while let Some(b) = cursor.take(log) {
        out.push(b.records.clone());
    }
    out
}

proptest! {
    /// A single producer with arbitrary combine points and batch
    /// limits: the concatenated consumed records equal the submitted
    /// sequence, every batch respects the limit, and epochs are
    /// nondecreasing across batches.
    #[test]
    fn single_producer_any_batching_preserves_sequence(
        ops in prop::collection::vec((0u32..1000, any::<bool>()), 0..60),
        max_batch in 1usize..8,
    ) {
        let log = LaunchLog::new(1, max_batch);
        let mut epoch = 0u64;
        for (op, combine_here) in &ops {
            log.submit(0, *op);
            if *combine_here {
                log.combine(epoch, None);
                epoch += 1;
            }
        }
        log.combine(epoch, Some(epoch));
        log.seal();

        let batches: Vec<_> = (0..log.published())
            .map(|i| log.get(i).unwrap())
            .collect();
        let consumed: Vec<u32> = batches.iter().flat_map(|b| b.records.clone()).collect();
        let submitted: Vec<u32> = ops.iter().map(|(op, _)| *op).collect();
        prop_assert_eq!(consumed, submitted);
        for w in batches.windows(2) {
            prop_assert!(w[0].epoch <= w[1].epoch, "epochs went backwards");
        }
        for b in &batches {
            prop_assert!(b.records.len() <= max_batch, "batch over the limit");
        }
    }

    /// Multiple producers: whatever the submission interleaving, each
    /// combine drains producers in slot order with per-producer FIFO
    /// preserved — the consumed sequence is a pure function of the
    /// per-round per-producer subsequences.
    #[test]
    fn flat_combining_is_slot_ordered_and_fifo_per_producer(
        producers in 1usize..4,
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..4, 0u32..1000), 0..12),
            1..6,
        ),
    ) {
        let log = LaunchLog::new(producers, usize::MAX);
        let mut expected: Vec<u32> = Vec::new();
        for (epoch, round) in rounds.iter().enumerate() {
            let mut per: Vec<Vec<u32>> = vec![Vec::new(); producers];
            for (p, op) in round {
                let p = p % producers;
                log.submit(p, *op);
                per[p].push(*op);
            }
            log.combine(epoch as u64, None);
            for seq in per {
                expected.extend(seq);
            }
        }
        log.seal();
        let consumed: Vec<u32> = drain(&log).into_iter().flatten().collect();
        prop_assert_eq!(consumed, expected);
    }

    /// Rewinding a cursor to any already-consumed batch replays the
    /// identical suffix — the invariant rollback recovery relies on.
    #[test]
    fn rewind_replays_the_identical_suffix(
        ops in prop::collection::vec((0u32..1000, any::<bool>()), 1..40),
    ) {
        let log = LaunchLog::new(1, 4);
        for (epoch, (op, combine_here)) in ops.iter().enumerate() {
            log.submit(0, *op);
            if *combine_here {
                log.combine(epoch as u64, None);
            }
        }
        log.combine(ops.len() as u64, None);
        log.seal();
        let first = drain(&log);
        for to in 0..=first.len() {
            let mut cursor = LogCursor::new();
            while cursor.take(&log).is_some() {}
            cursor.rewind(to);
            let mut replay = Vec::new();
            while let Some(b) = cursor.take(&log) {
                replay.push(b.records.clone());
            }
            prop_assert_eq!(&replay[..], &first[to..]);
        }
    }
}
