//! Resilient SPMD execution: checkpoint–restart under a deterministic
//! fault plan must recover *bit-identical* region contents and scalar
//! environments, and a shard that dies (panicking kernel) must fail the
//! whole run in bounded time with a diagnostic instead of deadlocking
//! the surviving shards.

use regent_cr::{control_replicate, CrOptions, ForestOracle};
use regent_fault::FaultPlan;
use regent_geometry::{Domain, DynPoint};
use regent_ir::{
    expr::{c, var},
    Program, ProgramBuilder, RegionArg, RegionParam, Store, TaskDecl,
};
use regent_region::{ops, FieldSpace, FieldType, ReductionOp, RegionId};
use regent_runtime::{
    execute_spmd, execute_spmd_resilient, execute_spmd_resilient_traced, EpochTemplate, MemoCache,
    ResilienceOptions, SpmdRunResult,
};
use regent_trace::{integrity_summary, validate, Tracer};
use std::sync::Arc;

type InitFn = Box<dyn Fn(&Program, &mut Store)>;

/// A halo-exchange stencil over a For loop: cross-shard copies every
/// iteration, so a rollback must re-drive the message protocol too.
fn stencil_program(n: u64, parts: usize, steps: u64) -> (Program, InitFn) {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64), ("y", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let y = fs.lookup("y").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let halo = ops::image(&mut b.forest, r, p, move |pt, sink| {
        let i = pt.coord(0);
        sink.push(DynPoint::from((i - 1).rem_euclid(n as i64)));
        sink.push(DynPoint::from((i + 1).rem_euclid(n as i64)));
    });
    let sweep = b.task(TaskDecl {
        name: "sweep".into(),
        params: vec![RegionParam::read_write(&[y]), RegionParam::read(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for pt in dom.iter() {
                let i = pt.coord(0);
                let l = ctx.read_f64(1, x, DynPoint::from((i - 1).rem_euclid(n as i64)));
                let rr = ctx.read_f64(1, x, DynPoint::from((i + 1).rem_euclid(n as i64)));
                ctx.write_f64(0, y, pt, 0.5 * (l + rr) + 0.125);
            }
        }),
        cost_per_element: 1.0,
    });
    let commit = b.task(TaskDecl {
        name: "commit".into(),
        params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[y])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for pt in dom.iter() {
                let v = ctx.read_f64(1, y, pt);
                ctx.write_f64(0, x, pt, v);
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(steps as f64));
    b.index_launch(
        sweep,
        parts as u64,
        vec![RegionArg::Part(p), RegionArg::Part(halo)],
    );
    b.index_launch(
        commit,
        parts as u64,
        vec![RegionArg::Part(p), RegionArg::Part(p)],
    );
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), x, |pt| ((pt.coord(0) * 7) % 11) as f64);
    });
    (prog, init)
}

/// A While loop driven by a Min-reduced scalar: rollback must restore
/// the replicated scalar environment so every shard re-takes the same
/// branches.
fn while_program(n: u64, parts: usize) -> (Program, InitFn) {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let advance = b.task(TaskDecl {
        name: "advance".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 1,
        returns_value: true,
        kernel: Arc::new(move |ctx| {
            let dt = ctx.scalars[0];
            let dom = ctx.domain(0).clone();
            let mut local_min = f64::INFINITY;
            for pt in dom.iter() {
                let v = ctx.read_f64(0, x, pt);
                let nv = v + dt * 0.5;
                ctx.write_f64(0, x, pt, nv);
                local_min = local_min.min(nv.abs() + 0.125);
            }
            ctx.set_return(local_min);
        }),
        cost_per_element: 1.0,
    });
    let t = b.scalar("t", 0.0);
    let dt = b.scalar("dt", 0.25);
    let w = b.while_loop(var(t).lt(c(2.0)));
    b.index_launch_full(
        advance,
        parts as u64,
        vec![RegionArg::Part(p)],
        vec![var(dt)],
        Some((dt, ReductionOp::Min)),
    );
    b.set_scalar(t, var(t).add(var(dt)));
    b.end(w);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), x, |pt| {
            ((pt.coord(0) * 13) % 7) as f64 - 3.0
        });
    });
    (prog, init)
}

/// Runs `mk` fault-free and resilient with `opts`, asserting the final
/// scalar env and every root-region field come out bit-identical.
fn assert_recovery_bit_identical(
    mk: impl Fn() -> (Program, InitFn),
    ns: usize,
    opts: &ResilienceOptions,
) -> (SpmdRunResult, SpmdRunResult) {
    let (prog_a, init) = mk();
    let mut store_a = Store::new(&prog_a);
    init(&prog_a, &mut store_a);
    let roots = prog_a.root_regions();
    let spmd_a = control_replicate(prog_a, &CrOptions::new(ns)).unwrap();
    let plain = execute_spmd(&spmd_a, &mut store_a);

    let (prog_b, init) = mk();
    let mut store_b = Store::new(&prog_b);
    init(&prog_b, &mut store_b);
    let spmd_b = control_replicate(prog_b, &CrOptions::new(ns)).unwrap();
    let resilient = execute_spmd_resilient(&spmd_b, &mut store_b, opts);

    assert_eq!(plain.env, resilient.env, "scalar env diverged (ns={ns})");
    // Useful-work stats exclude replays, so they too must match the
    // fault-free run exactly.
    assert_eq!(plain.stats.tasks_executed, resilient.stats.tasks_executed);
    assert_eq!(plain.stats.copies_executed, resilient.stats.copies_executed);
    assert_eq!(plain.stats.messages_sent, resilient.stats.messages_sent);
    assert_eq!(plain.stats.elements_sent, resilient.stats.elements_sent);
    assert_eq!(plain.stats.collectives, resilient.stats.collectives);
    for root in roots {
        let ia = store_a.instance_in(&spmd_a.forest, root);
        let ib = store_b.instance_in(&spmd_b.forest, root);
        for (fid, def) in spmd_a.forest.fields(root).iter() {
            for pt in spmd_a.forest.domain(root).iter() {
                match def.ty {
                    FieldType::F64 => {
                        let a = ia.read_f64(fid, pt);
                        let b = ib.read_f64(fid, pt);
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "field {:?} at {:?}: plain={a} recovered={b} (ns={ns})",
                            def.name,
                            pt
                        );
                    }
                    FieldType::I64 => {
                        assert_eq!(ia.read_i64(fid, pt), ib.read_i64(fid, pt));
                    }
                }
            }
        }
    }
    (plain, resilient)
}

#[test]
fn crash_recovery_is_bit_identical_stencil() {
    for ns in [2, 3, 4] {
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::new(9).crash_shard(1 % ns as u32, 3),
            ..Default::default()
        };
        let (_, res) = assert_recovery_bit_identical(|| stencil_program(48, 6, 6), ns, &opts);
        // Crash at epoch 3, snapshots at 0 and 2 ⇒ replay epochs 2..3.
        let per = &res.per_shard[0];
        assert_eq!(per.restores, 1, "ns={ns}");
        assert_eq!(per.epochs_replayed, 1, "ns={ns}");
        assert!(per.checkpoints >= 2, "ns={ns}");
    }
}

#[test]
fn crash_recovery_without_periodic_checkpoints_replays_from_start() {
    // interval 0: only the mandatory epoch-0 snapshot exists, so a
    // crash at epoch 4 replays all four completed epochs.
    let opts = ResilienceOptions {
        checkpoint_interval: 0,
        plan: FaultPlan::new(3).crash_shard(2, 4),
        ..Default::default()
    };
    let (_, res) = assert_recovery_bit_identical(|| stencil_program(48, 6, 6), 3, &opts);
    let per = &res.per_shard[0];
    assert_eq!(per.checkpoints, 1);
    assert_eq!(per.restores, 1);
    assert_eq!(per.epochs_replayed, 4);
}

#[test]
fn multiple_crashes_recover() {
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(11)
            .crash_shard(0, 1)
            .crash_shard(3, 3)
            .crash_shard(1, 5),
        ..Default::default()
    };
    let (_, res) = assert_recovery_bit_identical(|| stencil_program(64, 8, 7), 4, &opts);
    assert_eq!(res.per_shard[0].restores, 3);
}

#[test]
fn crash_recovery_while_loop_with_collective() {
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(5).crash_shard(1, 3),
        ..Default::default()
    };
    let (plain, res) = assert_recovery_bit_identical(|| while_program(40, 5), 3, &opts);
    // Replayed epochs re-ran their collectives (synchronization still
    // happens) without inflating the useful-work counter.
    assert_eq!(res.stats.collectives, plain.stats.collectives);
    assert!(res.per_shard[0].epochs_replayed > 0);
}

#[test]
fn crash_beyond_program_never_fires() {
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(1).crash_shard(0, 1000),
        ..Default::default()
    };
    let (plain, res) = assert_recovery_bit_identical(|| stencil_program(48, 6, 4), 3, &opts);
    assert_eq!(res.per_shard[0].restores, 0);
    assert_eq!(plain.stats.tasks_executed, res.stats.tasks_executed);
}

#[test]
fn seeded_crash_plans_recover_across_seeds() {
    // The CI smoke path: any REGENT_FAULT_SEED-derived plan must
    // recover bit-identically. Sweep a few seeds directly (the env
    // variable itself is process-global, so tests inject the plan).
    for seed in [1u64, 7, 42, 1234] {
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::seeded_crash(seed, 4, 4),
            ..Default::default()
        };
        assert_recovery_bit_identical(|| stencil_program(48, 4, 6), 4, &opts);
    }
}

#[test]
fn panicking_shard_fails_fast_with_diagnostic() {
    // Satellite regression: one shard's kernel dies mid-run; the peers
    // are blocked in copy receives and collectives. The run must fail
    // within bounded time (poisoned primitives + disconnected
    // channels), not hang, and the panic must name the failed shard.
    let t0 = std::time::Instant::now();
    let handle = std::thread::spawn(|| {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64), ("y", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let y = fs.lookup("y").unwrap();
        let n = 32u64;
        let parts = 4usize;
        let r = b.forest.create_region(Domain::range(n), fs);
        let p = ops::block(&mut b.forest, r, parts);
        let halo = ops::image(&mut b.forest, r, p, move |pt, sink| {
            sink.push(DynPoint::from((pt.coord(0) + 1).rem_euclid(n as i64)));
        });
        let bad = b.task(TaskDecl {
            name: "bad".into(),
            params: vec![RegionParam::read_write(&[y]), RegionParam::read(&[x])],
            num_scalar_args: 1,
            returns_value: true,
            kernel: Arc::new(move |ctx| {
                if ctx.scalars[0] >= 2.0 && ctx.launch_point.coord(0) == 0 {
                    panic!("kernel bug: deliberate failure for the resilience test");
                }
                let dom = ctx.domain(0).clone();
                for pt in dom.iter() {
                    let v =
                        ctx.read_f64(1, x, DynPoint::from((pt.coord(0) + 1).rem_euclid(n as i64)));
                    ctx.write_f64(0, y, pt, v + 1.0);
                }
                ctx.set_return(1.0);
            }),
            cost_per_element: 1.0,
        });
        let commit = b.task(TaskDecl {
            name: "commit".into(),
            params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[y])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let dom = ctx.domain(0).clone();
                for pt in dom.iter() {
                    let v = ctx.read_f64(1, y, pt);
                    ctx.write_f64(0, x, pt, v);
                }
            }),
            cost_per_element: 1.0,
        });
        let it = b.scalar("it", 0.0);
        let acc = b.scalar("acc", 0.0);
        let l = b.for_loop(c(6.0));
        b.index_launch_full(
            bad,
            parts as u64,
            vec![RegionArg::Part(p), RegionArg::Part(halo)],
            vec![var(it)],
            Some((acc, ReductionOp::Add)),
        );
        b.index_launch(
            commit,
            parts as u64,
            vec![RegionArg::Part(p), RegionArg::Part(p)],
        );
        b.set_scalar(it, var(it).add(c(1.0)));
        b.end(l);
        let prog = b.build();
        let mut store = Store::new(&prog);
        store.fill_f64(&prog, RegionId(0), x, |pt| pt.coord(0) as f64);
        let spmd = control_replicate(prog, &CrOptions::new(parts)).unwrap();
        execute_spmd(&spmd, &mut store);
    });
    let err = handle.join().expect_err("run should fail, not hang");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("shard 0 panicked"),
        "diagnostic should name the failed shard: {msg}"
    );
    assert!(
        msg.contains("deliberate failure"),
        "diagnostic should carry the original payload: {msg}"
    );
    // Far below the 30 s hang timeout: poisoning makes failure prompt.
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(20),
        "failure took {:?} — survivors likely hung",
        t0.elapsed()
    );
}

// ---------------------------------------------------------------------
// Integrity layer: silent-data-corruption injection, detection, and
// repair (exchange retransmission) or escalation (resident rollback).

#[test]
fn exchange_corruption_detected_and_repaired_bit_identical() {
    // Several seeds at a rate high enough to corrupt real frames: the
    // receive-side checksum must catch every injected flip, repair via
    // the producer's proactive retransmissions, and leave the results
    // bit-identical to a fault-free run.
    let mut any_detected = false;
    for seed in [3u64, 11, 29] {
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::new(seed).with_corrupt_rate(0.05),
            ..Default::default()
        };
        let (_, res) = assert_recovery_bit_identical(|| stencil_program(48, 6, 8), 3, &opts);
        let s = &res.stats;
        assert_eq!(
            s.corruptions_injected, s.corruptions_detected,
            "every injected corruption must be detected and vice versa (seed={seed})"
        );
        if s.corruptions_detected > 0 {
            any_detected = true;
            assert!(
                s.corruptions_repaired + s.corruptions_escalated > 0,
                "detections without repair or escalation (seed={seed})"
            );
        }
    }
    assert!(any_detected, "rate 0.05 never fired across three seeds");
}

#[test]
fn resident_corruption_escalates_to_coordinated_rollback() {
    // Golden stream (see regent-fault): plan seed 11 at rate 0.25 over
    // 4 shards schedules a resident corruption at epoch 1 (victim
    // shard 2) — within a 6-epoch run. The victim must detect the seal
    // mismatch and every shard must roll back together.
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(11).with_corrupt_rate(0.25),
        ..Default::default()
    };
    let (_, res) = assert_recovery_bit_identical(|| stencil_program(64, 8, 6), 4, &opts);
    assert_eq!(
        res.stats.corruptions_escalated, 1,
        "exactly one resident corruption is scheduled within 6 epochs"
    );
    for (shard, per) in res.per_shard.iter().enumerate() {
        assert!(
            per.restores >= 1,
            "shard {shard} did not take part in the coordinated rollback"
        );
    }
    assert_eq!(
        res.stats.corruptions_injected,
        res.stats.corruptions_detected
    );
}

#[test]
fn collective_corruption_repairs_through_while_loop() {
    // The While program reduces a scalar every epoch: corrupted
    // collective frames must be rejected before the fold and
    // re-produced, keeping the replicated scalar environment (and the
    // loop trip count) bit-identical.
    for seed in [7u64, 13] {
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::new(seed).with_corrupt_rate(0.2),
            ..Default::default()
        };
        let (_, res) = assert_recovery_bit_identical(|| while_program(40, 5), 3, &opts);
        assert_eq!(
            res.stats.corruptions_injected,
            res.stats.corruptions_detected
        );
    }
}

#[test]
fn corruption_composes_with_crash_recovery() {
    // Crashes and corruption from one plan: rollbacks triggered by
    // either cause must compose into a bit-identical recovery.
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(11).with_corrupt_rate(0.1).crash_shard(1, 3),
        ..Default::default()
    };
    let (_, res) = assert_recovery_bit_identical(|| stencil_program(48, 6, 8), 3, &opts);
    assert!(res.stats.restores >= 3, "crash restores on every shard");
}

#[test]
fn integrity_at_rate_zero_is_pure_overhead() {
    // integrity=true with corrupt_rate 0: seals, framing, and the
    // epoch-boundary verification sweep all run (this is the overhead
    // configuration EXPERIMENTS.md measures) but nothing fires.
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(5),
        integrity: true,
        ..Default::default()
    };
    let (_, res) = assert_recovery_bit_identical(|| stencil_program(48, 6, 6), 3, &opts);
    assert_eq!(res.stats.corruptions_injected, 0);
    assert_eq!(res.stats.corruptions_detected, 0);
    assert_eq!(res.stats.restores, 0);
}

#[test]
fn corruption_trace_is_coherent_and_spy_certified() {
    // The traced corruption run must carry CorruptDetected marks whose
    // repairs/escalations balance (integrity_summary::coherent), and
    // the Spy must certify the repaired execution's happens-before
    // graph like any other.
    let (prog, init) = stencil_program(64, 8, 6);
    let mut store = Store::new(&prog);
    init(&prog, &mut store);
    let spmd = control_replicate(prog, &CrOptions::new(4)).unwrap();
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(11).with_corrupt_rate(0.25),
        ..Default::default()
    };
    let tracer = Tracer::enabled();
    let res = execute_spmd_resilient_traced(&spmd, &mut store, &opts, &tracer);
    let trace = tracer.take();

    let s = integrity_summary(&trace);
    assert!(s.detected > 0, "no corruption events in the trace");
    assert!(s.coherent(), "incoherent integrity summary: {s:?}");
    assert_eq!(s.detected, res.stats.corruptions_detected);
    assert_eq!(s.escalated, res.stats.corruptions_escalated);

    let oracle = ForestOracle::new(&spmd.forest);
    let report = validate(&trace, &oracle).expect("structurally valid corrupted-run log");
    assert!(
        report.ok(),
        "spy violations on repaired trace:\n{:?}",
        report.violations
    );
    assert!(report.certified > 0, "no dependences were exercised");
}

#[test]
fn escalation_invalidates_memo_cache() {
    // A resident-corruption rollback undoes epochs whose schedules may
    // be captured as memo templates; the escalation must drop them.
    let memo = MemoCache::shared();
    {
        let mut m = memo.lock().unwrap();
        m.validate_forest(1);
        m.insert(EpochTemplate {
            key: 9,
            launch_sigs: vec![9],
            edges: vec![vec![]],
            forest_version: 1,
            capture_checks: 0,
        });
        assert!(!m.is_empty());
    }
    let opts = ResilienceOptions {
        checkpoint_interval: 2,
        plan: FaultPlan::new(11).with_corrupt_rate(0.25),
        memo: Some(Arc::clone(&memo)),
        ..Default::default()
    };
    let (_, res) = assert_recovery_bit_identical(|| stencil_program(64, 8, 6), 4, &opts);
    assert_eq!(res.stats.corruptions_escalated, 1);
    assert!(
        memo.lock().unwrap().is_empty(),
        "escalation must invalidate cached epoch templates"
    );
}
