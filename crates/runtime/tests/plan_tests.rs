//! Tests of the exchange-plan evaluation (§3.3): pair ownership,
//! ordering, element exactness, and the scale-invariance property the
//! paper relies on (O(1) intersections per region for halo patterns).

use regent_cr::{control_replicate, CrOptions};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{expr::c, Program, ProgramBuilder, RegionArg, RegionParam, TaskDecl};
use regent_region::{ops, FieldSpace, FieldType};
use regent_runtime::{build_exchange_plan, InstKey};
use std::sync::Arc;

/// Simple halo program: write blocks, read ±1 halos.
fn halo_program(n: u64, parts: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64), ("y", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let y = fs.lookup("y").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let q = ops::image(&mut b.forest, r, p, |pt, sink| {
        sink.push(DynPoint::from(pt.coord(0) - 1));
        sink.push(DynPoint::from(pt.coord(0)));
        sink.push(DynPoint::from(pt.coord(0) + 1));
    });
    let w = b.task(TaskDecl {
        name: "w".into(),
        params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[y])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    });
    let rd = b.task(TaskDecl {
        name: "r".into(),
        params: vec![RegionParam::read_write(&[y]), RegionParam::read(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(2.0));
    b.index_launch(
        w,
        parts as u64,
        vec![RegionArg::Part(p), RegionArg::Part(q)],
    );
    b.index_launch(
        rd,
        parts as u64,
        vec![RegionArg::Part(p), RegionArg::Part(q)],
    );
    b.end(l);
    b.build()
}

#[test]
fn pairs_have_correct_owners_and_order() {
    let spmd = control_replicate(halo_program(64, 8), &CrOptions::new(4)).unwrap();
    let plan = build_exchange_plan(&spmd);
    for pairs in &plan.pairs {
        let mut last = None;
        for p in pairs {
            assert!(p.src_owner < 4 && p.dst_owner < 4);
            assert!(!p.elements.is_empty());
            // Global order is non-decreasing in source position.
            if let Some(prev) = last {
                assert!(p.order >= prev, "pairs out of order");
            }
            last = Some(p.order);
            // Keys reference the right kinds.
            assert!(matches!(p.src_key, InstKey::UsePart(..)));
            assert!(matches!(p.dst_key, InstKey::UsePart(..)));
        }
    }
}

#[test]
fn halo_pairs_scale_linearly() {
    // O(1) neighbours per piece (§3.3): total pairs grow linearly in
    // piece count, not quadratically.
    let count = |parts: usize| {
        let spmd =
            control_replicate(halo_program(parts as u64 * 8, parts), &CrOptions::new(4)).unwrap();
        build_exchange_plan(&spmd).setup.num_pairs
    };
    let at8 = count(8);
    let at32 = count(32);
    assert!(at32 <= at8 * 5, "pairs grew superlinearly: {at8} → {at32}");
    assert!(at32 >= at8 * 3, "pairs should grow with pieces");
}

#[test]
fn exchange_elements_are_exact_boundaries() {
    // For ±1 halos, cross-piece pairs carry exactly one element.
    let spmd = control_replicate(halo_program(64, 8), &CrOptions::new(8)).unwrap();
    let plan = build_exchange_plan(&spmd);
    let mut cross = 0;
    for pairs in &plan.pairs {
        for p in pairs {
            if p.src_owner != p.dst_owner {
                assert_eq!(p.elements.volume(), 1, "{p:?}");
                cross += 1;
            }
        }
    }
    assert!(cross > 0, "expected cross-shard boundary exchanges");
}

#[test]
fn plan_is_deterministic() {
    let spmd = control_replicate(halo_program(48, 6), &CrOptions::new(3)).unwrap();
    let a = build_exchange_plan(&spmd);
    let b = build_exchange_plan(&spmd);
    assert_eq!(a.setup.num_pairs, b.setup.num_pairs);
    assert_eq!(a.setup.total_elements, b.setup.total_elements);
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(pb) {
            assert_eq!(x.src_key, y.src_key);
            assert_eq!(x.dst_key, y.dst_key);
            assert!(x.elements.set_eq(&y.elements));
        }
    }
}

#[test]
fn hierarchical_tree_shrinks_the_plan() {
    // DESIGN.md ablation: the §4.5 private/ghost structure reduces both
    // the pair count and the exchanged volume relative to the flat
    // structure, because private data leaves the analysis entirely.
    use regent_region::private_ghost_split;

    // Flat: block + halo partitions of the whole region.
    let flat = control_replicate(halo_program(256, 16), &CrOptions::new(8)).unwrap();
    let flat_plan = build_exchange_plan(&flat);

    // Hierarchical: the same pattern expressed through private/ghost.
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64), ("y", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let y = fs.lookup("y").unwrap();
    let r = b.forest.create_region(Domain::range(256), fs);
    let p = ops::block(&mut b.forest, r, 16);
    let q = ops::image(&mut b.forest, r, p, |pt, sink| {
        sink.push(DynPoint::from(pt.coord(0) - 1));
        sink.push(DynPoint::from(pt.coord(0)));
        sink.push(DynPoint::from(pt.coord(0) + 1));
    });
    let pg = private_ghost_split(&mut b.forest, p, q);
    let w = b.task(TaskDecl {
        name: "w".into(),
        params: vec![
            RegionParam::read_write(&[x]), // private own
            RegionParam::read_write(&[x]), // shared own
            RegionParam::read(&[y]),       // ghost halo
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    });
    let rd = b.task(TaskDecl {
        name: "r".into(),
        params: vec![
            RegionParam::read_write(&[y]),
            RegionParam::read_write(&[y]),
            RegionParam::read(&[x]),
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(|_| {}),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(2.0));
    b.index_launch(
        w,
        16,
        vec![
            RegionArg::Part(pg.private_owned),
            RegionArg::Part(pg.shared_owned),
            RegionArg::Part(pg.ghost_halo),
        ],
    );
    b.index_launch(
        rd,
        16,
        vec![
            RegionArg::Part(pg.private_owned),
            RegionArg::Part(pg.shared_owned),
            RegionArg::Part(pg.ghost_halo),
        ],
    );
    b.end(l);
    let hier = control_replicate(b.build(), &CrOptions::new(8)).unwrap();
    let hier_plan = build_exchange_plan(&hier);

    assert!(
        hier_plan.setup.total_elements < flat_plan.setup.total_elements,
        "hierarchical should move fewer elements: {} vs {}",
        hier_plan.setup.total_elements,
        flat_plan.setup.total_elements
    );
}
