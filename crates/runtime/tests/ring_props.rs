//! Concurrency battery for the lock-free data plane: the SPSC ring
//! ([`regent_runtime::ring`]) and the buffer pool
//! ([`regent_runtime::ChunkPool`]).
//!
//! The deterministic half runs on every `cargo test`: wrap-around FIFO
//! under a two-thread stress, full/empty boundary behavior, seal-on-
//! panic drains, mesh pair isolation, and pool recycle-vs-fresh bit
//! identity. Every blocking wait in these scenarios is bounded by
//! `REGENT_HANG_TIMEOUT_MS`, which the battery pins to a small value —
//! environment variables are process-global and the timeout is cached
//! on first use, so the whole battery lives in ONE sequential `#[test]`
//! in its own binary (the same idiom as `env_opts.rs`).
//!
//! The property half (model-based interleavings against a `VecDeque`
//! reference) is gated behind the `proptest-tests` cargo feature like
//! the other property suites: proptest is not part of the offline
//! dependency set.

use regent_runtime::{ring, ChunkPool, SendError};
use std::sync::mpsc::RecvTimeoutError;
use std::time::Duration;

/// One sequential battery (see module docs for why one `#[test]`).
#[test]
fn ring_battery() {
    // Cached on first hang_timeout() call; every full-ring wait and
    // the stress bound below derive from it.
    std::env::set_var("REGENT_HANG_TIMEOUT_MS", "2000");
    fifo_through_wraparound_two_threads();
    full_ring_returns_payload_after_timeout();
    empty_ring_times_out_then_delivers();
    seal_on_panic_publishes_then_disconnects();
    receiver_drop_fails_producer_send();
    mesh_pairs_are_isolated_fifo();
    pool_recycle_is_bit_identical_to_fresh();
}

/// Two threads, a deliberately tiny ring (capacity 8), and enough
/// messages to wrap the index space thousands of times: the consumer
/// must observe exactly 0..N in order — any lost publication, double
/// delivery, or torn slot read breaks the sequence.
fn fifo_through_wraparound_two_threads() {
    const N: u64 = 100_000;
    let (mut tx, mut rx) = ring::<u64>(8);
    let producer = std::thread::spawn(move || {
        for i in 0..N {
            // Mix batched pushes with explicit flushes so both
            // publication paths (auto-flush and manual) are exercised.
            if i % 3 == 0 {
                tx.send(i).expect("consumer alive");
            } else {
                tx.push(i).expect("consumer alive");
            }
        }
        // Sender drop publishes the tail batch.
    });
    for expect in 0..N {
        let got = rx
            .recv_timeout(Duration::from_millis(2000))
            .expect("producer alive and ahead");
        assert_eq!(got, expect, "FIFO violated at message {expect}");
    }
    producer.join().unwrap();
    assert!(rx.try_recv().is_none(), "exactly N messages, no more");
}

/// A ring whose consumer never drains: the producer fills all slots,
/// then the next push waits one hang timeout and hands the payload
/// back as `SendError::Full` instead of losing it.
fn full_ring_returns_payload_after_timeout() {
    let (mut tx, _rx) = ring::<u64>(2);
    tx.send(1).unwrap();
    tx.send(2).unwrap();
    match tx.send(3) {
        Err(SendError::Full(v)) => assert_eq!(v, 3, "payload handed back"),
        other => panic!("expected Full after hang timeout, got {other:?}"),
    }
}

/// Empty-ring receive times out without consuming anything; a
/// subsequent publication is still delivered (the timeout left the
/// cursor intact).
fn empty_ring_times_out_then_delivers() {
    let (mut tx, mut rx) = ring::<u64>(4);
    assert!(matches!(
        rx.recv_timeout(Duration::from_millis(20)),
        Err(RecvTimeoutError::Timeout)
    ));
    tx.send(7).unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_millis(2000)), Ok(7));
}

/// A producer that panics mid-stream: unwinding drops the sender,
/// which must publish the not-yet-flushed batch *then* seal — the
/// consumer drains every pushed message before seeing Disconnected.
/// This is the transport half of shard-death unwinding: peers get the
/// dead shard's last words, then a clean disconnect diagnostic.
fn seal_on_panic_publishes_then_disconnects() {
    let (mut tx, mut rx) = ring::<u64>(16);
    let producer = std::thread::spawn(move || {
        tx.send(1).unwrap();
        tx.push(2).unwrap(); // unflushed on purpose
        tx.push(3).unwrap(); // unflushed on purpose
        panic!("shard died mid-exchange");
    });
    assert!(producer.join().is_err(), "producer panicked by design");
    let mut drained = Vec::new();
    loop {
        match rx.recv_timeout(Duration::from_millis(2000)) {
            Ok(v) => drained.push(v),
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => panic!("seal lost: consumer hung"),
        }
    }
    assert_eq!(
        drained,
        vec![1, 2, 3],
        "unflushed pushes published on unwind"
    );
}

/// The mirror image: a consumer that dies fails the producer's next
/// send with `SendError::Closed` (carrying the payload) instead of
/// letting it fill the ring and stall.
fn receiver_drop_fails_producer_send() {
    let (mut tx, rx) = ring::<u64>(4);
    tx.send(1).unwrap();
    drop(rx);
    match tx.send(2) {
        Err(SendError::Closed(v)) => assert_eq!(v, 2),
        other => panic!("expected Closed, got {other:?}"),
    }
}

/// The executor mesh: every ordered shard pair gets its own ring, so
/// traffic on one pair can neither reorder nor leak into another.
/// Three shards send distinct tagged streams to each other
/// concurrently; every receiver sees exactly its own stream, in order.
fn mesh_pairs_are_isolated_fifo() {
    use regent_runtime::{copy_mesh, DataPlane};
    const PER_PAIR: u64 = 2_000;
    let ns = 3;
    let (senders, receivers) = copy_mesh::<u64>(ns, DataPlane::Ring, 16);
    std::thread::scope(|scope| {
        for (src, row) in senders.into_iter().enumerate() {
            scope.spawn(move || {
                let mut row = row;
                for i in 0..PER_PAIR {
                    for (dst, tx) in row.iter_mut().enumerate() {
                        // Tag with (src, dst, seq) packed into the value.
                        tx.send(((src as u64) << 40) | ((dst as u64) << 32) | i)
                            .expect("receiver alive");
                    }
                }
            });
        }
        for (dst, row) in receivers.into_iter().enumerate() {
            scope.spawn(move || {
                let mut row = row;
                for (src, rx) in row.iter_mut().enumerate() {
                    for i in 0..PER_PAIR {
                        let v = rx
                            .recv_timeout(Duration::from_millis(2000))
                            .expect("sender alive");
                        assert_eq!(
                            v,
                            ((src as u64) << 40) | ((dst as u64) << 32) | i,
                            "pair ({src}->{dst}) stream corrupted at {i}"
                        );
                    }
                }
            });
        }
    });
}

/// Buffers drawn from the pool must be indistinguishable from fresh
/// allocations: recycling clears content but a recycled buffer filled
/// with the same writes must be bit-identical to a fresh one —
/// including NaN payloads and negative-zero, which only survive
/// bit-level comparison.
fn pool_recycle_is_bit_identical_to_fresh() {
    let patterns: Vec<f64> = vec![
        f64::NAN,
        f64::from_bits(0x7ff8_dead_beef_cafe), // payload-carrying NaN
        -0.0,
        f64::INFINITY,
        f64::MIN_POSITIVE / 2.0, // subnormal
        1.0 / 3.0,
    ];
    let ints: Vec<i64> = vec![i64::MIN, -1, 0, 1, i64::MAX];

    let mut pool = ChunkPool::new();
    // Round 1: fresh allocations.
    let mut a = pool.take_f64(patterns.len());
    a.extend(&patterns);
    let mut ai = pool.take_i64(ints.len());
    ai.extend(&ints);
    assert_eq!(pool.allocs(), 2);
    assert_eq!(pool.reuses(), 0);
    let fresh_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
    let fresh_ints = ai.clone();

    // Recycle and redraw: the pool must hand the arena back (reuse
    // counter advances) and the refilled buffer must match bit-for-bit.
    pool.put_f64(a);
    pool.put_i64(ai);
    let mut b = pool.take_f64(patterns.len());
    assert!(b.is_empty(), "recycled buffer arrives cleared");
    b.extend(&patterns);
    let mut bi = pool.take_i64(ints.len());
    bi.extend(&ints);
    assert_eq!(pool.reuses(), 2, "second draw reuses the arenas");
    assert_eq!(pool.allocs(), 2, "no new allocations on reuse");
    let recycled_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
    assert_eq!(recycled_bits, fresh_bits, "f64 recycle is bit-identical");
    assert_eq!(bi, fresh_ints, "i64 recycle is identical");
}

/// Model-based interleavings against a `VecDeque` reference, gated
/// like every other property suite (proptest is not in the offline
/// dependency set).
#[cfg(feature = "proptest-tests")]
mod props {
    use proptest::prelude::*;
    use regent_runtime::ring;
    use std::collections::VecDeque;
    use std::time::Duration;

    #[derive(Clone, Debug)]
    enum Op {
        Push(u32),
        Flush,
        Recv,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u32..10_000).prop_map(Op::Push),
            1 => Just(Op::Flush),
            3 => Just(Op::Recv),
        ]
    }

    proptest! {
        /// Arbitrary push/flush/recv schedules against a tiny ring:
        /// the ring must agree with a capacity-bounded VecDeque model
        /// at every step — published items drain FIFO, unflushed
        /// pushes stay invisible, and wrap-around never loses or
        /// duplicates a slot. Pushes that would overfill the model are
        /// rewritten to receives so the test never sits out a
        /// hang-timeout wait.
        #[test]
        fn ring_matches_vecdeque_model(
            ops in prop::collection::vec(op_strategy(), 0..200),
            cap_pow in 1u32..4, // capacity 2, 4, 8: wrap constantly
        ) {
            let cap = 1usize << cap_pow;
            let (mut tx, mut rx) = ring::<u32>(cap);
            let mut published: VecDeque<u32> = VecDeque::new();
            let mut pending: VecDeque<u32> = VecDeque::new();
            // Auto-flush bound of the implementation (see ring.rs).
            const AUTO_FLUSH: usize = 32;
            for op in ops {
                let op = match op {
                    // A push into a full ring would block for the hang
                    // timeout; the model downgrades it to a receive.
                    Op::Push(_) if published.len() + pending.len() == cap => Op::Recv,
                    other => other,
                };
                match op {
                    Op::Push(v) => {
                        prop_assert!(tx.push(v).is_ok());
                        pending.push_back(v);
                        if pending.len() >= AUTO_FLUSH {
                            published.append(&mut pending);
                        }
                    }
                    Op::Flush => {
                        tx.flush();
                        published.append(&mut pending);
                    }
                    Op::Recv => {
                        let expect = published.pop_front();
                        let got = rx.try_recv();
                        prop_assert_eq!(got, expect, "ring diverged from model");
                    }
                }
            }
            // Drain: everything ever pushed must come out, in order.
            tx.flush();
            published.append(&mut pending);
            while let Some(expect) = published.pop_front() {
                prop_assert_eq!(rx.try_recv(), Some(expect));
            }
            prop_assert!(rx.try_recv().is_none());
        }

        /// Seal-on-drop at an arbitrary published/pending split: the
        /// consumer drains exactly the pushed prefix (drop publishes
        /// the pending suffix) and then observes Disconnected.
        #[test]
        fn sender_drop_always_drains_then_disconnects(
            n_published in 0usize..6,
            n_pending in 0usize..6,
        ) {
            let (mut tx, mut rx) = ring::<u32>(16);
            for i in 0..n_published {
                tx.send(i as u32).unwrap();
            }
            for i in 0..n_pending {
                tx.push((n_published + i) as u32).unwrap();
            }
            drop(tx);
            for i in 0..(n_published + n_pending) {
                prop_assert_eq!(
                    rx.recv_timeout(Duration::from_millis(500)),
                    Ok(i as u32)
                );
            }
            prop_assert!(matches!(
                rx.recv_timeout(Duration::from_millis(500)),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected)
            ));
        }
    }
}
