//! End-to-end equivalence: for a battery of programs, the SPMD
//! execution of the control-replicated program and the implicitly
//! parallel execution must both produce region contents and scalar
//! environments *bit-identical* to the sequential reference
//! interpreter — the paper's correctness contract (sequential
//! semantics, §1).

use regent_cr::{control_replicate, CrOptions, SyncMode};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{
    expr::{c, var},
    interp, Privilege, Program, ProgramBuilder, RegionArg, RegionParam, Store, TaskDecl,
};
use regent_region::{ops, FieldSpace, FieldType, ReductionOp, RegionId};
use regent_runtime::{execute_implicit, execute_spmd, ImplicitOptions};
use std::sync::Arc;

/// Runs `program` sequentially and control-replicated with `ns` shards,
/// compares every root region field and the scalar env, and returns the
/// SPMD result for extra assertions.
fn assert_equivalent(
    mk: impl Fn() -> (Program, Box<dyn Fn(&Program, &mut Store)>),
    ns: usize,
    opts_mod: impl Fn(&mut CrOptions),
) -> regent_runtime::SpmdRunResult {
    // Sequential reference.
    let (prog_seq, init) = mk();
    let mut store_seq = Store::new(&prog_seq);
    init(&prog_seq, &mut store_seq);
    let (env_seq, _) = interp::run(&prog_seq, &mut store_seq);

    // Control-replicated.
    let (prog_cr, init) = mk();
    let mut store_cr = Store::new(&prog_cr);
    init(&prog_cr, &mut store_cr);
    let mut opts = CrOptions::new(ns);
    opts_mod(&mut opts);
    let forest_snapshot_roots = prog_cr.root_regions();
    let spmd = control_replicate(prog_cr, &opts).expect("control replication failed");
    let result = execute_spmd(&spmd, &mut store_cr);

    assert_eq!(env_seq, result.env, "scalar env mismatch (ns={ns})");
    for root in forest_snapshot_roots {
        compare_roots(&prog_seq, &store_seq, &spmd.forest, &store_cr, root, ns);
    }
    result
}

fn compare_roots(
    prog_seq: &Program,
    store_seq: &Store,
    forest_cr: &regent_region::RegionForest,
    store_cr: &Store,
    root: RegionId,
    ns: usize,
) {
    let seq_inst = store_seq.instance(prog_seq, root);
    let cr_inst = store_cr.instance_in(forest_cr, root);
    let fields = prog_seq.forest.fields(root);
    for (fid, def) in fields.iter() {
        for p in prog_seq.forest.domain(root).iter() {
            match def.ty {
                FieldType::F64 => {
                    let a = seq_inst.read_f64(fid, p);
                    let b = cr_inst.read_f64(fid, p);
                    assert!(
                        a == b || (a.is_nan() && b.is_nan()),
                        "field {:?} at {:?}: seq={} cr={} (ns={ns})",
                        def.name,
                        p,
                        a,
                        b
                    );
                }
                FieldType::I64 => {
                    assert_eq!(
                        seq_inst.read_i64(fid, p),
                        cr_inst.read_i64(fid, p),
                        "field {:?} at {:?} (ns={ns})",
                        def.name,
                        p
                    );
                }
            }
        }
    }
}

type InitFn = Box<dyn Fn(&Program, &mut Store)>;
type ProgramFactory = (Program, InitFn);

/// Fig. 2: two regions A, B; TF writes PB[i] reading PA[i]; TG writes
/// PA[j] reading the shifted ghost QB[j]. T time steps.
fn fig2_program(n: u64, parts: usize, steps: u64) -> ProgramFactory {
    let mut b = ProgramBuilder::new();
    let fsa = FieldSpace::of(&[("a", FieldType::F64)]);
    let fa = fsa.lookup("a").unwrap();
    let fsb = FieldSpace::of(&[("b", FieldType::F64)]);
    let fb = fsb.lookup("b").unwrap();
    let ra = b.forest.create_region(Domain::range(n), fsa);
    let rb = b.forest.create_region(Domain::range(n), fsb);
    let pa = ops::block(&mut b.forest, ra, parts);
    let pb = ops::block(&mut b.forest, rb, parts);
    // h(j) = (j*17 + 3) mod n: an arbitrary scatter (not affine-local).
    let h = move |j: i64| (j * 17 + 3).rem_euclid(n as i64);
    let qb = ops::image(&mut b.forest, rb, pa, move |p, sink| {
        sink.push(DynPoint::from(h(p.coord(0))));
    });
    let tf = b.task(TaskDecl {
        name: "TF".into(),
        params: vec![RegionParam::read_write(&[fb]), RegionParam::read(&[fa])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let v = ctx.read_f64(1, fa, p);
                ctx.write_f64(0, fb, p, 2.0 * v + 1.0);
            }
        }),
        cost_per_element: 1.0,
    });
    let tg = b.task(TaskDecl {
        name: "TG".into(),
        params: vec![RegionParam::read_write(&[fa]), RegionParam::read(&[fb])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let v = ctx.read_f64(1, fb, DynPoint::from(h(p.coord(0))));
                ctx.write_f64(0, fa, p, v * 0.5 - 3.0);
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(steps as f64));
    b.index_launch(
        tf,
        parts as u64,
        vec![RegionArg::Part(pb), RegionArg::Part(pa)],
    );
    b.index_launch(
        tg,
        parts as u64,
        vec![RegionArg::Part(pa), RegionArg::Part(qb)],
    );
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), fa, |p| (p.coord(0) as f64).sin() * 8.0);
        store.fill_f64(prog, RegionId(1), fb, |p| p.coord(0) as f64 - 4.0);
    });
    (prog, init)
}

#[test]
fn fig2_spmd_matches_sequential() {
    for ns in [1, 2, 3, 4, 7] {
        let r = assert_equivalent(|| fig2_program(64, 8, 5), ns, |_| {});
        assert_eq!(r.stats.tasks_executed, 8 * 2 * 5);
        if ns > 1 {
            assert!(r.stats.messages_sent > 0, "cross-shard traffic expected");
        }
    }
}

#[test]
fn fig2_barrier_mode_matches() {
    assert_equivalent(|| fig2_program(48, 6, 4), 3, |o| o.sync = SyncMode::Barrier);
}

#[test]
fn fig2_no_placement_opt_matches() {
    assert_equivalent(
        || fig2_program(48, 6, 4),
        4,
        |o| o.optimize_placement = false,
    );
}

#[test]
fn fig2_no_disjoint_skipping_matches() {
    // Emitting copies between *all* pairs must still be correct — the
    // static skipping is an optimization only.
    assert_equivalent(
        || fig2_program(48, 6, 3),
        3,
        |o| o.skip_disjoint_pairs = false,
    );
}

#[test]
fn fig2_more_shards_than_launch_points() {
    // parts=3, ns=5: some shards own nothing.
    assert_equivalent(|| fig2_program(30, 3, 4), 5, |_| {});
}

/// Scatter-add via reduction privilege: edges reduce into nodes through
/// an aliased ghost partition; a second task reads and rescales nodes.
fn reduction_program(nodes_n: u64, edges_n: u64, parts: usize, steps: u64) -> ProgramFactory {
    let mut b = ProgramBuilder::new();
    let nfs = FieldSpace::of(&[("q", FieldType::F64), ("v", FieldType::F64)]);
    let q = nfs.lookup("q").unwrap();
    let v = nfs.lookup("v").unwrap();
    let efs = FieldSpace::of(&[("src", FieldType::I64), ("w", FieldType::F64)]);
    let esrc = efs.lookup("src").unwrap();
    let ew = efs.lookup("w").unwrap();
    let rn = b.forest.create_region(Domain::range(nodes_n), nfs);
    let re = b.forest.create_region(Domain::range(edges_n), efs);
    let pn = ops::block(&mut b.forest, rn, parts);
    let pe = ops::block(&mut b.forest, re, parts);
    // Edge e targets node (e * 7 + 1) mod nodes_n.
    let tgt = move |e: i64| (e * 7 + 1).rem_euclid(nodes_n as i64);
    // Ghost partition of nodes: image of edge blocks through tgt.
    let gn = ops::image(&mut b.forest, rn, pe, move |p, sink| {
        sink.push(DynPoint::from(tgt(p.coord(0))));
    });
    let scatter = b.task(TaskDecl {
        name: "scatter".into(),
        params: vec![
            RegionParam::read(&[esrc, ew]),
            RegionParam {
                privilege: Privilege::Reduce(ReductionOp::Add),
                fields: vec![q],
            },
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for e in dom.iter() {
                let n = ctx.read_i64(0, esrc, e);
                let w = ctx.read_f64(0, ew, e);
                ctx.reduce_f64(1, q, DynPoint::from(n), w);
            }
        }),
        cost_per_element: 1.0,
    });
    let update = b.task(TaskDecl {
        name: "update".into(),
        params: vec![RegionParam::read_write(&[q, v])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for p in dom.iter() {
                let qv = ctx.read_f64(0, q, p);
                let vv = ctx.read_f64(0, v, p);
                ctx.write_f64(0, v, p, vv + 0.125 * qv);
                ctx.write_f64(0, q, p, 0.0); // clear accumulator
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(steps as f64));
    b.index_launch(
        scatter,
        parts as u64,
        vec![RegionArg::Part(pe), RegionArg::Part(gn)],
    );
    b.index_launch(update, parts as u64, vec![RegionArg::Part(pn)]);
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_i64(prog, RegionId(1), esrc, move |p| tgt(p.coord(0)));
        store.fill_f64(prog, RegionId(1), ew, |p| 0.25 * (p.coord(0) % 5) as f64);
    });
    (prog, init)
}

#[test]
fn reduction_spmd_matches_sequential() {
    for ns in [1, 2, 4, 6] {
        let r = assert_equivalent(|| reduction_program(32, 96, 8, 4), ns, |_| {});
        // Reduction copies must actually flow.
        assert!(r.stats.copies_executed > 0);
    }
}

#[test]
fn reduction_barrier_mode_matches() {
    assert_equivalent(
        || reduction_program(32, 96, 8, 3),
        4,
        |o| o.sync = SyncMode::Barrier,
    );
}

/// Dynamic time stepping: dt computed by a Min scalar reduction feeds a
/// While loop condition (§4.4).
fn dt_program(n: u64, parts: usize) -> ProgramFactory {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let advance = b.task(TaskDecl {
        name: "advance".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 1,
        returns_value: true,
        kernel: Arc::new(move |ctx| {
            let dt = ctx.scalars[0];
            let dom = ctx.domain(0).clone();
            let mut local_min = f64::INFINITY;
            for pt in dom.iter() {
                let v = ctx.read_f64(0, x, pt);
                let nv = v + dt * 0.5;
                ctx.write_f64(0, x, pt, nv);
                local_min = local_min.min(nv.abs() + 0.125);
            }
            ctx.set_return(local_min);
        }),
        cost_per_element: 1.0,
    });
    let t = b.scalar("t", 0.0);
    let dt = b.scalar("dt", 0.25);
    let w = b.while_loop(var(t).lt(c(2.0)));
    b.index_launch_full(
        advance,
        parts as u64,
        vec![RegionArg::Part(p)],
        vec![var(dt)],
        Some((dt, ReductionOp::Min)),
    );
    b.set_scalar(t, var(t).add(var(dt)));
    b.end(w);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), x, |p| {
            ((p.coord(0) * 13) % 7) as f64 - 3.0
        });
    });
    (prog, init)
}

#[test]
fn scalar_reduction_while_matches() {
    for ns in [1, 2, 3, 5] {
        let r = assert_equivalent(|| dt_program(40, 5), ns, |_| {});
        assert!(r.stats.collectives > 0, "collectives expected");
    }
}

#[test]
fn implicit_executor_matches_sequential() {
    for workers in [1, 2, 8] {
        // fig2 program.
        let (prog, init) = fig2_program(64, 8, 5);
        let mut store_seq = Store::new(&prog);
        init(&prog, &mut store_seq);
        let (env_seq, _) = interp::run(&prog, &mut store_seq);

        let (prog2, init2) = fig2_program(64, 8, 5);
        let mut store_imp = Store::new(&prog2);
        init2(&prog2, &mut store_imp);
        let (env_imp, stats) = execute_implicit(
            &prog2,
            &mut store_imp,
            ImplicitOptions::with_workers(workers),
        );
        assert_eq!(env_seq, env_imp);
        assert_eq!(stats.tasks_launched, 80);
        assert!(stats.dependence_checks > 0);
        for root in prog.root_regions() {
            compare_roots(&prog, &store_seq, &prog2.forest, &store_imp, root, workers);
        }
    }
}

#[test]
fn implicit_executor_reductions_and_scalars() {
    let (prog, init) = reduction_program(32, 96, 8, 4);
    let mut s1 = Store::new(&prog);
    init(&prog, &mut s1);
    let (e1, _) = interp::run(&prog, &mut s1);
    let (prog2, init2) = reduction_program(32, 96, 8, 4);
    let mut s2 = Store::new(&prog2);
    init2(&prog2, &mut s2);
    let (e2, _) = execute_implicit(&prog2, &mut s2, ImplicitOptions::with_workers(4));
    assert_eq!(e1, e2);
    for root in prog.root_regions() {
        compare_roots(&prog, &s1, &prog2.forest, &s2, root, 4);
    }

    let (prog, init) = dt_program(40, 5);
    let mut s1 = Store::new(&prog);
    init(&prog, &mut s1);
    let (e1, _) = interp::run(&prog, &mut s1);
    let (prog2, init2) = dt_program(40, 5);
    let mut s2 = Store::new(&prog2);
    init2(&prog2, &mut s2);
    let (e2, _) = execute_implicit(&prog2, &mut s2, ImplicitOptions::with_workers(3));
    assert_eq!(e1, e2);
}

#[test]
fn cr_stats_fig2() {
    let (prog, _) = fig2_program(64, 8, 5);
    let spmd = control_replicate(prog, &CrOptions::new(4)).unwrap();
    // PB's write emits exactly one copy (to QB); PA's write emits none
    // (PA's tree has no other use).
    assert_eq!(spmd.count_copies(), 1);
    assert_eq!(spmd.stats.copies_inserted, 1);
}

/// §4.5 structure: one region with a disjoint top-level
/// {private, ghost} partition, a private working partition PB, a ghost
/// working partition SB (writer), and an aliased ghost halo QB
/// (reader). The region tree proves PB ⊥ QB, so only SB's write needs a
/// copy.
fn hierarchical_program(n: u64, parts: usize, steps: u64) -> ProgramFactory {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("xin", FieldType::F64), ("xout", FieldType::F64)]);
    let xin = fs.lookup("xin").unwrap();
    let xout = fs.lookup("xout").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    // Block of the whole region; the halo pattern reads neighbors.
    let blocks = ops::block(&mut b.forest, r, parts);
    let halo = ops::image(&mut b.forest, r, blocks, |p, sink| {
        sink.push(DynPoint::from(p.coord(0) - 1));
        sink.push(DynPoint::from(p.coord(0) + 1));
    });
    // Ghost elements: touched by some *other* block's halo.
    let mut ghost = Domain::empty(1);
    for (c, h) in b.forest.partition(halo).iter().collect::<Vec<_>>() {
        let own = b.forest.domain(b.forest.subregion(blocks, c)).clone();
        ghost = ghost.union(&b.forest.domain(h).subtract(&own));
    }
    let private = b.forest.domain(r).subtract(&ghost);
    let top = b.forest.create_partition(
        r,
        regent_region::Disjointness::Disjoint,
        vec![(DynPoint::from(0), private), (DynPoint::from(1), ghost)],
    );
    let all_private = b.forest.subregion_i(top, 0);
    let all_ghost = b.forest.subregion_i(top, 1);
    // PB: private halves of each block; SB: ghost halves; QB: halos
    // clipped to ghost.
    let pb = ops::restrict(&mut b.forest, all_private, blocks);
    let sb = ops::restrict(&mut b.forest, all_ghost, blocks);
    let qb = ops::restrict(&mut b.forest, all_ghost, halo);
    // Double-buffered stencil: `compute` writes xout from the xin halo;
    // `commit` copies xout back into xin. Field-granular privileges keep
    // the launches parallel (the write of xout never conflicts with the
    // halo read of xin).
    let compute = b.task(TaskDecl {
        name: "compute".into(),
        params: vec![
            RegionParam::read_write(&[xout]), // private out
            RegionParam::read_write(&[xout]), // owned ghost out
            RegionParam::read(&[xin]),        // private in
            RegionParam::read(&[xin]),        // owned ghost in
            RegionParam::read(&[xin]),        // halo in
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let halo_dom = ctx.domain(4).clone();
            let mut acc = 0.0;
            for p in halo_dom.iter() {
                acc += ctx.read_f64(4, xin, p);
            }
            for arg in [0usize, 1] {
                let dom = ctx.domain(arg).clone();
                for p in dom.iter() {
                    let v = ctx.read_f64(arg + 2, xin, p);
                    ctx.write_f64(arg, xout, p, v * 1.5 + 1.0 + acc * 1e-3);
                }
            }
        }),
        cost_per_element: 1.0,
    });
    let commit = b.task(TaskDecl {
        name: "commit".into(),
        params: vec![
            RegionParam::read_write(&[xin]), // private
            RegionParam::read_write(&[xin]), // owned ghost
            RegionParam::read(&[xout]),      // private
            RegionParam::read(&[xout]),      // owned ghost
        ],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            for arg in [0usize, 1] {
                let dom = ctx.domain(arg).clone();
                for p in dom.iter() {
                    let v = ctx.read_f64(arg + 2, xout, p);
                    ctx.write_f64(arg, xin, p, v);
                }
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(steps as f64));
    b.index_launch(
        compute,
        parts as u64,
        vec![
            RegionArg::Part(pb),
            RegionArg::Part(sb),
            RegionArg::Part(pb),
            RegionArg::Part(sb),
            RegionArg::Part(qb),
        ],
    );
    b.index_launch(
        commit,
        parts as u64,
        vec![
            RegionArg::Part(pb),
            RegionArg::Part(sb),
            RegionArg::Part(pb),
            RegionArg::Part(sb),
        ],
    );
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), xin, |p| (p.coord(0) % 9) as f64 * 0.5);
    });
    (prog, init)
}

#[test]
fn hierarchical_spmd_matches_sequential() {
    for ns in [1, 2, 4] {
        assert_equivalent(|| hierarchical_program(64, 8, 4), ns, |_| {});
    }
}

#[test]
fn hierarchical_tree_prunes_copies() {
    // With static skipping: PB (under all_private) is provably disjoint
    // from QB and SB (under all_ghost) — its write emits no copies.
    // Only SB → QB survives (both under all_ghost, may alias).
    let (prog, _) = hierarchical_program(64, 8, 4);
    let spmd = control_replicate(prog, &CrOptions::new(4)).unwrap();
    assert!(
        spmd.stats.pairs_proven_disjoint > 0,
        "§4.5 pruning expected"
    );
    let with_skip = spmd.count_copies();
    // Ablation: without the region-tree pruning, both writers copy to
    // every same-tree use.
    let (prog2, _) = hierarchical_program(64, 8, 4);
    let mut o = CrOptions::new(4);
    o.skip_disjoint_pairs = false;
    o.optimize_placement = false;
    let spmd2 = control_replicate(prog2, &o).unwrap();
    assert!(
        spmd2.count_copies() > with_skip,
        "without: {}, with: {}",
        spmd2.count_copies(),
        with_skip
    );
    // The ablated program is still correct, just wasteful.
    assert_equivalent(
        || hierarchical_program(64, 8, 4),
        3,
        |o| {
            o.skip_disjoint_pairs = false;
            o.optimize_placement = false;
        },
    );
}

#[test]
fn mapping_is_agnostic_to_results() {
    // §4.2: "The techniques described in this paper are agnostic to
    // the mapping used" — adversarial mappers change scheduling, never
    // results.
    use regent_runtime::{DefaultMapper, SingleWorkerMapper, TaskKindMapper};
    let (prog, init) = reduction_program(32, 96, 8, 4);
    let mut sref = Store::new(&prog);
    init(&prog, &mut sref);
    let (env_ref, _) = interp::run(&prog, &mut sref);

    let mappers: Vec<std::sync::Arc<dyn regent_runtime::Mapper>> = vec![
        std::sync::Arc::new(DefaultMapper),
        std::sync::Arc::new(SingleWorkerMapper),
        std::sync::Arc::new(TaskKindMapper),
    ];
    for mapper in mappers {
        let (prog2, init2) = reduction_program(32, 96, 8, 4);
        let mut s2 = Store::new(&prog2);
        init2(&prog2, &mut s2);
        let opts = ImplicitOptions {
            mapper,
            ..ImplicitOptions::with_workers(4)
        };
        let (env, _) = execute_implicit(&prog2, &mut s2, opts);
        assert_eq!(env_ref, env);
        for root in prog.root_regions() {
            compare_roots(&prog, &sref, &prog2.forest, &s2, root, 4);
        }
    }
}

/// Conditional control flow driven by a reduced scalar: the If branch
/// taken depends on a Max reduction from the previous step, so all
/// shards must take the same branch every iteration (§4.4's replicated
/// scalar state).
fn conditional_program(n: u64, parts: usize, steps: u64) -> ProgramFactory {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let grow = b.task(TaskDecl {
        name: "grow".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 0,
        returns_value: true,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            let mut mx = f64::NEG_INFINITY;
            for q in dom.iter() {
                let v = ctx.read_f64(0, x, q) * 1.5 + 0.25;
                ctx.write_f64(0, x, q, v);
                mx = mx.max(v);
            }
            ctx.set_return(mx);
        }),
        cost_per_element: 1.0,
    });
    let damp = b.task(TaskDecl {
        name: "damp".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for q in dom.iter() {
                let v = ctx.read_f64(0, x, q);
                ctx.write_f64(0, x, q, v * 0.25);
            }
        }),
        cost_per_element: 1.0,
    });
    let peak = b.scalar("peak", 0.0);
    let hits = b.scalar("damp_count", 0.0);
    let l = b.for_loop(c(steps as f64));
    b.index_launch_full(
        grow,
        parts as u64,
        vec![RegionArg::Part(p)],
        vec![],
        Some((peak, ReductionOp::Max)),
    );
    // if peak > 10: damp everything (and count how often).
    let cond = var(peak).lt(c(10.0)); // 1.0 when peak < 10
    b.push_if(
        cond,
        vec![],
        vec![
            regent_ir::Stmt::IndexLaunch(regent_ir::IndexLaunch {
                task: damp,
                launch_domain: (0..parts as i64)
                    .map(regent_geometry::DynPoint::from)
                    .collect(),
                args: vec![RegionArg::Part(p)],
                scalar_args: vec![],
                reduce_result: None,
            }),
            regent_ir::Stmt::SetScalar {
                var: hits,
                expr: var(hits).add(c(1.0)),
            },
        ],
    );
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), x, |q| (q.coord(0) % 5) as f64 * 0.5);
    });
    (prog, init)
}

#[test]
fn conditional_on_reduced_scalar_matches() {
    for ns in [1, 2, 4] {
        let r = assert_equivalent(|| conditional_program(32, 4, 8), ns, |_| {});
        // The damp branch fired at least once (peak exceeds 10 while
        // growing 1.5× per step).
        assert!(r.env[1] >= 1.0, "damp never fired: env={:?}", r.env);
    }
}

#[test]
fn zero_trip_loops_and_dynamic_counts() {
    // A For whose trip count is a scalar computed at runtime — zero on
    // the first run (so copies, resets and collectives never fire) and
    // non-trivial on the second.
    let build = |count: f64| -> ProgramFactory {
        let mut b = ProgramBuilder::new();
        let fs = FieldSpace::of(&[("x", FieldType::F64)]);
        let x = fs.lookup("x").unwrap();
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = ops::block(&mut b.forest, r, 4);
        let q = ops::image(&mut b.forest, r, p, |pt, sink| {
            sink.push(DynPoint::from(pt.coord(0) + 1));
        });
        let w = b.task(TaskDecl {
            name: "w".into(),
            params: vec![RegionParam::read_write(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(move |ctx| {
                let dom = ctx.domain(0).clone();
                for pt in dom.iter() {
                    let v = ctx.read_f64(0, x, pt);
                    ctx.write_f64(0, x, pt, v + 1.0);
                }
            }),
            cost_per_element: 1.0,
        });
        let rd = b.task(TaskDecl {
            name: "rd".into(),
            params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[x])],
            num_scalar_args: 0,
            returns_value: false,
            kernel: Arc::new(|_| {}),
            cost_per_element: 1.0,
        });
        let n = b.scalar("n", count);
        let l = b.for_loop(var(n));
        b.index_launch(w, 4, vec![RegionArg::Part(p)]);
        b.end(l);
        // A second (empty-body-allowed) use of q so coherence matters.
        let _ = (rd, q);
        let prog = b.build();
        let init: InitFn = Box::new(move |prog, store| {
            store.fill_f64(prog, RegionId(0), x, |pt| pt.coord(0) as f64);
        });
        (prog, init)
    };
    for count in [0.0, 3.0] {
        for ns in [1, 3] {
            assert_equivalent(|| build(count), ns, |_| {});
        }
    }
}
