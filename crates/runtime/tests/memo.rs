//! Negative-path and lifecycle tests for epoch-trace memoization: the
//! transparent-fallback contract of `crates/runtime/src/memo.rs`.
//!
//! Capture → replay must be bit-identical to the sequential reference;
//! structural forest mutations must invalidate the cache and recapture;
//! epochs that diverge from the predicted template (extra launches,
//! missing launches, flipped branches) must fall back to full analysis
//! mid-epoch and still produce correct results; and a memoized implicit
//! run must agree bit-for-bit with a checkpoint–restart SPMD recovery
//! under the seeded fault plans the `REGENT_FAULT_SEED` CI smoke uses.

use regent_cr::{control_replicate, CrOptions};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{
    expr::{c, var},
    interp, IndexLaunch, Program, ProgramBuilder, RegionArg, RegionParam, Stmt, Store, TaskDecl,
};
use regent_region::{ops, FieldSpace, FieldType, RegionId};
use regent_runtime::{
    execute_implicit, execute_spmd_resilient, FaultPlan, ImplicitOptions, MemoCache,
    ResilienceOptions,
};
use regent_trace::{memo_summary, EventKind, Tracer};
use std::sync::Arc;

type InitFn = Box<dyn Fn(&Program, &mut Store)>;

/// A two-phase halo program: every epoch launches `diffuse` (writes `y`
/// from a shifted read of `x`) then `fold` (writes `x` from `y`), so a
/// captured template carries real intra-epoch dependence edges.
fn halo_program(n: u64, parts: usize, steps: u64) -> (Program, InitFn) {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64), ("y", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let y = fs.lookup("y").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let halo = ops::image(&mut b.forest, r, p, move |pt, sink| {
        sink.push(DynPoint::from((pt.coord(0) + 1).rem_euclid(n as i64)));
    });
    let diffuse = b.task(TaskDecl {
        name: "diffuse".into(),
        params: vec![RegionParam::read_write(&[y]), RegionParam::read(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for pt in dom.iter() {
                let v = ctx.read_f64(1, x, DynPoint::from((pt.coord(0) + 1).rem_euclid(n as i64)));
                ctx.write_f64(0, y, pt, 0.5 * v + 1.0);
            }
        }),
        cost_per_element: 1.0,
    });
    let fold = b.task(TaskDecl {
        name: "fold".into(),
        params: vec![RegionParam::read_write(&[x]), RegionParam::read(&[y])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for pt in dom.iter() {
                let v = ctx.read_f64(1, y, pt);
                ctx.write_f64(0, x, pt, v * 1.25 - 0.5);
            }
        }),
        cost_per_element: 1.0,
    });
    let l = b.for_loop(c(steps as f64));
    b.index_launch(
        diffuse,
        parts as u64,
        vec![RegionArg::Part(p), RegionArg::Part(halo)],
    );
    b.index_launch(
        fold,
        parts as u64,
        vec![RegionArg::Part(p), RegionArg::Part(p)],
    );
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), x, |pt| (pt.coord(0) as f64).cos() * 4.0);
        store.fill_f64(prog, RegionId(0), y, |_| 0.0);
    });
    (prog, init)
}

/// A program whose epoch shape flips after `flip_at` iterations: a
/// counter scalar drives an If between one and two index launches.
/// `grow == true` adds the second launch *after* the flip (the replayed
/// prefix matches and the divergence fires mid-epoch); `grow == false`
/// removes it (the epoch ends with the template expecting more).
fn phased_program(n: u64, parts: usize, steps: u64, flip_at: f64, grow: bool) -> (Program, InitFn) {
    let mut b = ProgramBuilder::new();
    let fs = FieldSpace::of(&[("x", FieldType::F64)]);
    let x = fs.lookup("x").unwrap();
    let r = b.forest.create_region(Domain::range(n), fs);
    let p = ops::block(&mut b.forest, r, parts);
    let scale = b.task(TaskDecl {
        name: "scale".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for pt in dom.iter() {
                let v = ctx.read_f64(0, x, pt);
                ctx.write_f64(0, x, pt, v * 1.01 + 0.125);
            }
        }),
        cost_per_element: 1.0,
    });
    let damp = b.task(TaskDecl {
        name: "damp".into(),
        params: vec![RegionParam::read_write(&[x])],
        num_scalar_args: 0,
        returns_value: false,
        kernel: Arc::new(move |ctx| {
            let dom = ctx.domain(0).clone();
            for pt in dom.iter() {
                let v = ctx.read_f64(0, x, pt);
                ctx.write_f64(0, x, pt, v * 0.75);
            }
        }),
        cost_per_element: 1.0,
    });
    let i = b.scalar("i", 0.0);
    let launch = |task| {
        Stmt::IndexLaunch(IndexLaunch {
            task,
            launch_domain: (0..parts as i64).map(DynPoint::from).collect(),
            args: vec![RegionArg::Part(p)],
            scalar_args: vec![],
            reduce_result: None,
        })
    };
    let short = vec![launch(scale)];
    let long = vec![launch(scale), launch(damp)];
    let (before, after) = if grow { (short, long) } else { (long, short) };
    let l = b.for_loop(c(steps as f64));
    b.push_if(var(i).lt(c(flip_at)), before, after);
    b.set_scalar(i, var(i).add(c(1.0)));
    b.end(l);
    let prog = b.build();
    let init: InitFn = Box::new(move |prog, store| {
        store.fill_f64(prog, RegionId(0), x, |pt| pt.coord(0) as f64 * 0.5 - 3.0);
    });
    (prog, init)
}

/// Bit-compares every root region of two executions.
fn assert_bits_equal(prog: &Program, a: &Store, b: &Store, what: &str) {
    for root in prog.root_regions() {
        let ia = a.instance(prog, root);
        let ib = b.instance(prog, root);
        for (fid, def) in prog.forest.fields(root).iter() {
            for pt in prog.forest.domain(root).iter() {
                let va = ia.read_f64(fid, pt);
                let vb = ib.read_f64(fid, pt);
                assert!(
                    va.to_bits() == vb.to_bits(),
                    "{what}: field {:?} at {:?}: {va} vs {vb}",
                    def.name,
                    pt
                );
            }
        }
    }
}

fn memo_opts(tracer: &Arc<Tracer>, cache: Arc<std::sync::Mutex<MemoCache>>) -> ImplicitOptions {
    ImplicitOptions {
        tracer: tracer.clone(),
        ..ImplicitOptions::with_workers(4)
    }
    .with_memo(cache)
}

fn count_events(trace: &regent_trace::Trace, pred: impl Fn(&EventKind) -> bool) -> usize {
    trace
        .tracks
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| pred(&e.kind))
        .count()
}

#[test]
fn capture_then_replay_is_bit_identical() {
    let steps = 6u64;
    let parts = 4usize;
    let (prog, init) = halo_program(64, parts, steps);
    let mut seq = Store::new(&prog);
    init(&prog, &mut seq);
    let (env_seq, _) = interp::run(&prog, &mut seq);

    let (prog2, init2) = halo_program(64, parts, steps);
    let mut store = Store::new(&prog2);
    init2(&prog2, &mut store);
    let tracer = Tracer::enabled();
    let (env, stats) =
        execute_implicit(&prog2, &mut store, memo_opts(&tracer, MemoCache::shared()));
    assert_eq!(env_seq, env);
    assert_bits_equal(&prog, &seq, &store, "memoized replay");

    // One capture, every later epoch a full replay of 2 launches ×
    // `parts` points each.
    assert_eq!(stats.memo_captures, 1);
    assert_eq!(stats.memo_hits, steps - 1);
    assert_eq!(stats.memo_misses, 0);
    assert_eq!(stats.memo_invalidations, 0);
    assert_eq!(stats.memo_replayed_tasks, (steps - 1) * 2 * parts as u64);

    // The trace shows the same story, and the per-epoch analysis cost
    // collapses to zero on replayed epochs (no DepAnalysis spans).
    let trace = tracer.take();
    assert_eq!(
        count_events(&trace, |k| matches!(k, EventKind::MemoCapture { .. })),
        1
    );
    assert_eq!(
        count_events(&trace, |k| matches!(k, EventKind::MemoHit { .. })),
        (steps - 1) as usize
    );
    let summary = memo_summary(&trace, "control");
    assert_eq!(summary.hits, steps - 1);
    assert!(summary.first_epoch_analysis_ns > 0);
    assert_eq!(summary.steady_state_analysis_ns, 0.0);
}

#[test]
fn shared_cache_replays_from_the_first_epoch() {
    let steps = 4u64;
    let cache = MemoCache::shared();
    let (prog, init) = halo_program(48, 3, steps);
    let mut s1 = Store::new(&prog);
    init(&prog, &mut s1);
    let (_, first) = execute_implicit(
        &prog,
        &mut s1,
        memo_opts(&Tracer::disabled(), cache.clone()),
    );
    assert_eq!(first.memo_captures, 1);

    // Same structure, fresh run, same cache: the persisted prediction
    // replays even epoch 0 — no captures at all.
    let (prog2, init2) = halo_program(48, 3, steps);
    let mut s2 = Store::new(&prog2);
    init2(&prog2, &mut s2);
    let (_, second) = execute_implicit(&prog2, &mut s2, memo_opts(&Tracer::disabled(), cache));
    assert_eq!(second.memo_captures, 0);
    assert_eq!(second.memo_hits, steps);
    assert_eq!(second.memo_misses, 0);
    assert_bits_equal(&prog, &s1, &s2, "second memoized run");
}

#[test]
fn forest_mutation_invalidates_and_recaptures() {
    let steps = 5u64;
    let parts = 3usize;
    let cache = MemoCache::shared();
    let (prog, init) = halo_program(48, parts, steps);
    let mut s1 = Store::new(&prog);
    init(&prog, &mut s1);
    execute_implicit(
        &prog,
        &mut s1,
        memo_opts(&Tracer::disabled(), cache.clone()),
    );

    // Structurally mutate the second program's forest before running:
    // an extra partition bumps the forest version, so the cached
    // templates (validated against the old version) must be dropped.
    let (mut prog2, init2) = halo_program(48, parts, steps);
    ops::block(&mut prog2.forest, RegionId(0), parts + 1);
    let mut s2 = Store::new(&prog2);
    init2(&prog2, &mut s2);
    let tracer = Tracer::enabled();
    let (_, stats) = execute_implicit(&prog2, &mut s2, memo_opts(&tracer, cache));
    assert_eq!(stats.memo_invalidations, 1);
    assert_eq!(stats.memo_captures, 1, "must recapture after invalidation");
    assert_eq!(stats.memo_hits, steps - 1);
    let trace = tracer.take();
    assert_eq!(
        count_events(&trace, |k| matches!(k, EventKind::MemoInvalidate { .. })),
        1
    );
    // The extra partition changes no semantics: results still match.
    assert_bits_equal(&prog, &s1, &s2, "post-invalidation run");
}

#[test]
fn divergent_epochs_fall_back_to_analysis() {
    // `grow`: the epoch gains a launch after the flip — the replayed
    // prefix matches, then the extra launch diverges mid-epoch.
    // `shrink`: the epoch loses a launch — the template expects more at
    // the epoch boundary. Both must miss exactly once, re-capture the
    // new shape silently, and replay it for the remaining epochs.
    let steps = 8u64;
    let flip_at = 3.0;
    for grow in [true, false] {
        let (prog, init) = phased_program(48, 3, steps, flip_at, grow);
        let mut seq = Store::new(&prog);
        init(&prog, &mut seq);
        let (env_seq, _) = interp::run(&prog, &mut seq);

        let (prog2, init2) = phased_program(48, 3, steps, flip_at, grow);
        let mut store = Store::new(&prog2);
        init2(&prog2, &mut store);
        let tracer = Tracer::enabled();
        let (env, stats) =
            execute_implicit(&prog2, &mut store, memo_opts(&tracer, MemoCache::shared()));
        assert_eq!(env_seq, env, "grow={grow}");
        assert_bits_equal(&prog, &seq, &store, "divergent run");

        assert_eq!(stats.memo_captures, 1, "grow={grow}");
        assert_eq!(stats.memo_misses, 1, "grow={grow}");
        assert_eq!(stats.memo_hits, steps - 2, "grow={grow}");
        let trace = tracer.take();
        assert_eq!(
            count_events(&trace, |k| matches!(k, EventKind::MemoMiss { .. })),
            1,
            "grow={grow}"
        );
        let summary = memo_summary(&trace, "control");
        assert_eq!(summary.misses, 1);
        assert_eq!(summary.hits, steps - 2);
    }
}

#[test]
fn memoized_implicit_matches_fault_seeded_spmd_recovery() {
    // The REGENT_FAULT_SEED interop shape: the same program through (a)
    // the memoized implicit executor and (b) SPMD with a seeded crash
    // plan and checkpoint–restart recovery. Both paths must land on the
    // reference bits — memoization on one side and rollback-replay on
    // the other are both invisible to the results.
    let steps = 6u64;
    let parts = 4usize;
    let (prog, init) = halo_program(64, parts, steps);
    let mut memo_store = Store::new(&prog);
    init(&prog, &mut memo_store);
    let (env_memo, stats) = execute_implicit(
        &prog,
        &mut memo_store,
        memo_opts(&Tracer::disabled(), MemoCache::shared()),
    );
    assert!(stats.memo_hits >= 1);

    for seed in [1u64, 42] {
        let (prog2, init2) = halo_program(64, parts, steps);
        let mut store = Store::new(&prog2);
        init2(&prog2, &mut store);
        let spmd = control_replicate(prog2, &CrOptions::new(parts)).unwrap();
        let opts = ResilienceOptions {
            checkpoint_interval: 2,
            plan: FaultPlan::seeded_crash(seed, parts, 4),
            ..Default::default()
        };
        let r = execute_spmd_resilient(&spmd, &mut store, &opts);
        assert_eq!(env_memo, r.env, "seed={seed}");
        // Roots live in both forests with identical domains; compare
        // against the memoized implicit store bit-for-bit.
        for root in prog.root_regions() {
            let ia = memo_store.instance(&prog, root);
            let ib = store.instance_in(&spmd.forest, root);
            for (fid, _) in prog.forest.fields(root).iter() {
                for pt in prog.forest.domain(root).iter() {
                    assert_eq!(
                        ia.read_f64(fid, pt).to_bits(),
                        ib.read_f64(fid, pt).to_bits(),
                        "seed={seed} at {pt:?}"
                    );
                }
            }
        }
    }
}
