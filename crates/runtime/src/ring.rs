//! Lock-free shard data plane: bounded SPSC rings with batched
//! publication, the transport abstraction the executors exchange
//! [`crate::spmd_exec`] copy messages over, and core pinning.
//!
//! The SPMD executors connect every ordered shard pair with exactly one
//! producer and one consumer, so the natural transport is a
//! single-producer single-consumer ring:
//!
//! * **Layout** — a power-of-two slot array indexed by free-running
//!   `head` (consumer) and `tail` (producer) counters, each on its own
//!   cache line ([`CachePadded`]) so producer and consumer never
//!   false-share. Wrap-around is a mask, full/empty are counter
//!   differences (`tail - head == capacity` / `tail == head`), and the
//!   counters never overflow in practice (a `usize` of messages).
//! * **Memory ordering** — the producer writes the slot *then*
//!   publishes with `tail.store(Release)`; the consumer observes the
//!   new tail with an `Acquire` load, so the slot write
//!   *happens-before* the slot read. Symmetrically the consumer frees
//!   a slot with `head.store(Release)` and the producer re-checks
//!   occupancy with an `Acquire` load, so the consumer's read
//!   happens-before the producer's overwrite. This is the classic
//!   Lamport queue argument; no other synchronization exists on the
//!   hot path.
//! * **Batched publication** — [`RingSender::push`] writes slots
//!   without publishing; one [`RingSender::flush`] makes a whole
//!   producer phase visible with a single `Release` store instead of
//!   one per message. The executors flush before entering a consumer
//!   phase (and `push` self-flushes when the ring fills or the batch
//!   bound is hit), so a peer never waits on an unpublished frame.
//! * **Parking** — waits spin briefly, then yield, then sleep in short
//!   slices ([`Backoff`]); every blocking wait is bounded by
//!   [`crate::collective::hang_timeout`] exactly like the channel path
//!   (`REGENT_HANG_TIMEOUT_MS`).
//! * **Disconnect semantics** — dropping the sender (including during a
//!   panic unwind) flushes pending slots and seals the ring: the
//!   consumer drains what was published, then sees `Disconnected` —
//!   the same drop-based peer-death unwinding `std::sync::mpsc` gave
//!   the executors. Dropping the receiver makes further sends fail.
//!
//! [`CopyTx`]/[`CopyRx`] wrap a ring or a legacy `std::sync::mpsc`
//! channel behind one interface; `REGENT_DATA_PLANE=channel` restores
//! the channel mesh (the ring is the default), which is what the
//! `fig_dataplane` benchmark compares against.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::collective::hang_timeout;

/// Pads (and aligns) a value to a cache line so two adjacent atomics
/// never share one — the producer hammers `tail`, the consumer `head`,
/// and false sharing between them would serialize the whole point of
/// the ring.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Exponential backoff for lock-free waits: spin with a hint first
/// (the common case is nanoseconds), then yield the timeslice, then
/// sleep in short slices so an oversubscribed machine still makes
/// progress. Deliberately futex-free: the workspace has no libc
/// dependency, and the hang-timeout bound keeps the worst case finite.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh (fully spinning) backoff.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Waits a little longer than the previous call.
    pub fn snooze(&mut self) {
        if self.step < 7 {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
        } else if self.step < 12 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(50));
        }
        self.step = self.step.saturating_add(1);
    }
}

/// The shared core of one SPSC ring.
struct RingCore<T> {
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read (free-running).
    head: CachePadded<AtomicUsize>,
    /// First unpublished slot (free-running): the consumer may read
    /// everything in `[head, tail)`.
    tail: CachePadded<AtomicUsize>,
    /// Cleared (after a final flush) when the sender drops.
    tx_alive: AtomicBool,
    /// Cleared when the receiver drops.
    rx_alive: AtomicBool,
}

// SAFETY: the sender and receiver halves hand `T`s across threads
// (requiring `T: Send`) and partition all slot access by the SPSC
// head/tail protocol documented on the module.
unsafe impl<T: Send> Send for RingCore<T> {}
unsafe impl<T: Send> Sync for RingCore<T> {}

impl<T> Drop for RingCore<T> {
    fn drop(&mut self) {
        // Both halves are gone (`&mut self`), so plain loads are fine;
        // drop every published-but-unconsumed element. The sender's
        // drop flushed, so nothing sits unpublished above `tail`.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// Why a ring send failed, carrying the unsent value back.
#[derive(Debug)]
pub enum SendError<T> {
    /// The receiver dropped; the message can never be delivered.
    Closed(T),
    /// The ring stayed full for the whole hang timeout — the consumer
    /// is stuck, which in a correctly synchronized run is a deadlock.
    Full(T),
}

/// Producer half of an SPSC ring. Not `Clone` — exactly one producer.
pub struct RingSender<T> {
    core: Arc<RingCore<T>>,
    /// Next slot to write (includes unpublished pushes).
    local_tail: usize,
    /// The value last stored into `core.tail`.
    published: usize,
    /// Last observed consumer position (refreshed only when the ring
    /// looks full, keeping the hot path load-free).
    cached_head: usize,
}

/// Publish at least every this many pushes even without an explicit
/// flush, bounding consumer latency under long producer phases.
const AUTO_FLUSH: usize = 32;

impl<T: Send> RingSender<T> {
    /// Writes `v` into the ring without necessarily publishing it —
    /// call [`RingSender::flush`] before blocking on anything a peer
    /// must act on. Blocks (bounded by the hang timeout) while the
    /// ring is full. Returns whether the ring was momentarily full
    /// (a back-pressure stall).
    pub fn push(&mut self, v: T) -> Result<bool, SendError<T>> {
        if !self.core.rx_alive.load(Ordering::Acquire) {
            return Err(SendError::Closed(v));
        }
        let cap = self.core.mask + 1;
        let mut stalled = false;
        if self.local_tail - self.cached_head == cap {
            self.cached_head = self.core.head.load(Ordering::Acquire);
            if self.local_tail - self.cached_head == cap {
                // Publish what we have so the consumer can drain it,
                // then wait for a slot.
                self.flush();
                stalled = true;
                let deadline = Instant::now() + hang_timeout();
                let mut b = Backoff::new();
                loop {
                    if !self.core.rx_alive.load(Ordering::Acquire) {
                        return Err(SendError::Closed(v));
                    }
                    self.cached_head = self.core.head.load(Ordering::Acquire);
                    if self.local_tail - self.cached_head < cap {
                        break;
                    }
                    if Instant::now() >= deadline {
                        return Err(SendError::Full(v));
                    }
                    b.snooze();
                }
            }
        }
        unsafe { (*self.core.slots[self.local_tail & self.core.mask].get()).write(v) };
        self.local_tail += 1;
        if self.local_tail - self.published >= AUTO_FLUSH {
            self.flush();
        }
        Ok(stalled)
    }

    /// Publishes every pending push with a single `Release` store.
    pub fn flush(&mut self) {
        if self.local_tail != self.published {
            self.core.tail.0.store(self.local_tail, Ordering::Release);
            self.published = self.local_tail;
        }
    }

    /// [`RingSender::push`] + [`RingSender::flush`]: `mpsc`-style
    /// immediate send.
    pub fn send(&mut self, v: T) -> Result<bool, SendError<T>> {
        let r = self.push(v);
        self.flush();
        r
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        // Seal: publish everything written (harmless if the receiver
        // is already gone), then mark the producer dead so the
        // consumer unwinds with `Disconnected` after draining. Runs
        // during panic unwinds too — that is the peer-death semantics
        // the executors' diagnostics rely on.
        if self.local_tail != self.published {
            self.core.tail.0.store(self.local_tail, Ordering::Release);
        }
        self.core.tx_alive.store(false, Ordering::Release);
    }
}

/// Consumer half of an SPSC ring. Not `Clone` — exactly one consumer.
pub struct RingReceiver<T> {
    core: Arc<RingCore<T>>,
    /// Next slot to read (mirror of `core.head`, owned here).
    local_head: usize,
    /// Last observed published tail.
    cached_tail: usize,
}

impl<T: Send> RingReceiver<T> {
    /// Takes the next published element, if any.
    pub fn try_recv(&mut self) -> Option<T> {
        if self.local_head == self.cached_tail {
            self.cached_tail = self.core.tail.0.load(Ordering::Acquire);
            if self.local_head == self.cached_tail {
                return None;
            }
        }
        let v = unsafe {
            (*self.core.slots[self.local_head & self.core.mask].get()).assume_init_read()
        };
        self.local_head += 1;
        self.core.head.0.store(self.local_head, Ordering::Release);
        Some(v)
    }

    /// Blocks for the next element, up to `timeout`. Mirrors
    /// `mpsc::Receiver::recv_timeout`, including `Disconnected` once
    /// the sender dropped *and* the ring is drained (the sender's drop
    /// publishes before sealing, so no message is ever lost).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        if let Some(v) = self.try_recv() {
            return Ok(v);
        }
        let deadline = Instant::now() + timeout;
        let mut b = Backoff::new();
        loop {
            if let Some(v) = self.try_recv() {
                return Ok(v);
            }
            if !self.core.tx_alive.load(Ordering::Acquire) {
                // The sender's final publish happened-before the seal
                // we just observed; one more look drains it.
                return self.try_recv().ok_or(RecvTimeoutError::Disconnected);
            }
            if Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            b.snooze();
        }
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.core.rx_alive.store(false, Ordering::Release);
        // Undelivered elements are dropped by `RingCore::drop` once
        // the sender's Arc is gone too.
    }
}

/// Creates a bounded SPSC ring holding up to `capacity` elements
/// (rounded up to a power of two, minimum 2).
pub fn ring<T: Send>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let core = Arc::new(RingCore {
        mask: cap - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        tx_alive: AtomicBool::new(true),
        rx_alive: AtomicBool::new(true),
    });
    (
        RingSender {
            core: Arc::clone(&core),
            local_tail: 0,
            published: 0,
            cached_head: 0,
        },
        RingReceiver {
            core,
            local_head: 0,
            cached_tail: 0,
        },
    )
}

/// Which transport the exchange mesh uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataPlane {
    /// Lock-free SPSC rings (the default).
    Ring,
    /// The legacy `std::sync::mpsc` channel mesh
    /// (`REGENT_DATA_PLANE=channel`), kept as the baseline the
    /// `fig_dataplane` benchmark and the dual-plane tests compare
    /// against.
    Channel,
}

/// Reads `REGENT_DATA_PLANE` (default [`DataPlane::Ring`]; `channel`
/// or `chan`, case-insensitive, selects the legacy mesh). Parsed per
/// executor launch — once per run, not per message — so tests can
/// toggle it.
pub fn data_plane_from_env() -> DataPlane {
    match std::env::var("REGENT_DATA_PLANE") {
        Ok(v)
            if v.trim().eq_ignore_ascii_case("channel")
                || v.trim().eq_ignore_ascii_case("chan") =>
        {
            DataPlane::Channel
        }
        _ => DataPlane::Ring,
    }
}

/// Per-pair ring capacity in messages: `REGENT_RING_CAP`, default 256,
/// clamped to at least 2 and rounded up to a power of two. The
/// capacity must exceed the frames one producer can address to one
/// peer inside a single copy statement (a handful per pair, plus
/// bounded retransmissions), or producers back-pressure against
/// consumers that have not reached their consumer phase yet — the
/// hang timeout turns that misconfiguration into a diagnostic instead
/// of a silent hang.
pub fn ring_cap_from_env() -> usize {
    std::env::var("REGENT_RING_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c >= 2)
        .unwrap_or(256)
}

/// Whether `REGENT_PIN_CORES` asks for shard-thread core pinning
/// (`1`/`true`/`on`/`yes`, case-insensitive).
pub fn pin_cores_enabled() -> bool {
    std::env::var("REGENT_PIN_CORES").is_ok_and(|v| {
        let v = v.trim();
        v == "1"
            || v.eq_ignore_ascii_case("true")
            || v.eq_ignore_ascii_case("on")
            || v.eq_ignore_ascii_case("yes")
    })
}

/// Pins the calling thread to `core` (modulo the machine's available
/// parallelism). Returns whether the affinity call succeeded; on
/// non-Linux targets (or unsupported architectures) this is a no-op
/// returning `false`. Implemented as a raw `sched_setaffinity`
/// syscall: the workspace links no libc crate.
pub fn pin_thread_to_core(core: usize) -> bool {
    let ncpu = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let cpu = core % ncpu.max(1);
    pin_syscall(cpu)
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_syscall(cpu: usize) -> bool {
    let mut mask = [0u64; 16]; // 1024-CPU mask
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: isize;
    // SAFETY: sched_setaffinity(0, sizeof mask, &mask) reads `mask`
    // only for the duration of the call.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn pin_syscall(cpu: usize) -> bool {
    let mut mask = [0u64; 16];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: isize;
    // SAFETY: as above; aarch64 passes the syscall number in x8.
    unsafe {
        std::arch::asm!(
            "svc #0",
            inlateout("x0") 0usize => ret,
            in("x1") std::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            in("x8") 122usize, // __NR_sched_setaffinity
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn pin_syscall(_cpu: usize) -> bool {
    false
}

/// Sender half of the exchange transport: a ring or a legacy channel.
pub enum CopyTx<T> {
    /// Lock-free SPSC ring.
    Ring(RingSender<T>),
    /// `std::sync::mpsc` channel (legacy plane).
    Channel(Sender<T>),
}

impl<T: Send> CopyTx<T> {
    /// Enqueues `v`, possibly without publishing it yet (ring plane);
    /// returns whether the transport momentarily back-pressured.
    pub fn push(&mut self, v: T) -> Result<bool, SendError<T>> {
        match self {
            CopyTx::Ring(s) => s.push(v),
            CopyTx::Channel(s) => s
                .send(v)
                .map(|()| false)
                .map_err(|e| SendError::Closed(e.0)),
        }
    }

    /// Makes every pending push visible to the consumer.
    pub fn flush(&mut self) {
        if let CopyTx::Ring(s) = self {
            s.flush();
        }
    }

    /// Immediate (published) send.
    pub fn send(&mut self, v: T) -> Result<bool, SendError<T>> {
        match self {
            CopyTx::Ring(s) => s.send(v),
            CopyTx::Channel(s) => s
                .send(v)
                .map(|()| false)
                .map_err(|e| SendError::Closed(e.0)),
        }
    }
}

/// Receiver half of the exchange transport.
pub enum CopyRx<T> {
    /// Lock-free SPSC ring.
    Ring(RingReceiver<T>),
    /// `std::sync::mpsc` channel (legacy plane).
    Channel(Receiver<T>),
}

impl<T: Send> CopyRx<T> {
    /// Blocks for the next message up to `timeout`, with
    /// `mpsc::recv_timeout` semantics on both planes.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match self {
            CopyRx::Ring(r) => r.recv_timeout(timeout),
            CopyRx::Channel(r) => r.recv_timeout(timeout),
        }
    }

    /// Takes the next message if one is already available.
    pub fn try_recv(&mut self) -> Option<T> {
        match self {
            CopyRx::Ring(r) => r.try_recv(),
            CopyRx::Channel(r) => r.try_recv().ok(),
        }
    }
}

/// Builds the full exchange mesh for `ns` shards on the chosen plane:
/// `senders[src][dst]` paired with `receivers[dst][src]`, one
/// independent SPSC link per ordered pair. Each shard thread takes
/// ownership of its sender row, so a dying shard seals every link it
/// produces into and its peers unwind instead of hanging.
#[allow(clippy::type_complexity)]
pub fn copy_mesh<T: Send>(
    ns: usize,
    plane: DataPlane,
    cap: usize,
) -> (Vec<Vec<CopyTx<T>>>, Vec<Vec<CopyRx<T>>>) {
    let mut senders: Vec<Vec<CopyTx<T>>> = (0..ns).map(|_| Vec::with_capacity(ns)).collect();
    let mut rx_rows: Vec<Vec<Option<CopyRx<T>>>> =
        (0..ns).map(|_| (0..ns).map(|_| None).collect()).collect();
    for (src, row) in senders.iter_mut().enumerate() {
        for slot in rx_rows.iter_mut() {
            let (tx, rx) = match plane {
                DataPlane::Ring => {
                    let (tx, rx) = ring::<T>(cap);
                    (CopyTx::Ring(tx), CopyRx::Ring(rx))
                }
                DataPlane::Channel => {
                    let (tx, rx) = channel::<T>();
                    (CopyTx::Channel(tx), CopyRx::Channel(rx))
                }
            };
            row.push(tx);
            slot[src] = Some(rx);
        }
    }
    let receivers = rx_rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|o| o.expect("mesh construction left a receiver slot empty"))
                .collect()
        })
        .collect();
    (senders, receivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_through_wraparound() {
        let (mut tx, mut rx) = ring::<u64>(4);
        for round in 0..64u64 {
            for i in 0..3 {
                tx.push(round * 10 + i).unwrap();
            }
            tx.flush();
            for i in 0..3 {
                assert_eq!(rx.try_recv(), Some(round * 10 + i));
            }
            assert!(rx.try_recv().is_none());
        }
    }

    #[test]
    fn unflushed_pushes_are_invisible_until_flush() {
        let (mut tx, mut rx) = ring::<u32>(16);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert!(rx.try_recv().is_none(), "batched pushes must not publish");
        tx.flush();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
    }

    #[test]
    fn sender_drop_seals_after_publishing() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.push(7).unwrap();
        drop(tx); // drop must flush the pending push, then seal
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn receiver_drop_fails_sends() {
        let (mut tx, rx) = ring::<u32>(8);
        drop(rx);
        assert!(matches!(tx.push(1), Err(SendError::Closed(1))));
    }

    #[test]
    fn empty_ring_times_out() {
        let (_tx, mut rx) = ring::<u32>(8);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn dropped_ring_drops_undelivered_elements() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = ring::<D>(8);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        tx.flush();
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
