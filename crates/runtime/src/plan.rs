//! The dynamic half of the copy intersection optimization (§3.3):
//! evaluating a compiled [`SpmdProgram`]'s intersection declarations
//! into concrete exchange pairs before shard execution begins.
//!
//! The computation runs in the two phases the paper describes: a
//! *shallow* pass finds which pairs of subregions overlap at all (via
//! the interval-tree / BVH structures of `regent-region`), then a
//! *complete* pass computes the exact shared element sets for the
//! surviving pairs only. Both phases are timed — these are the numbers
//! Table 1 reports.

use regent_cr::{CopySource, SpmdProgram, UseBase};
use regent_geometry::Domain;
use regent_region::intersect::shallow_intersections_of;
use regent_region::Color;
use std::time::Instant;

/// Identifies one physical instance held by some shard.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum InstKey {
    /// Instance of use `u` for partition color `c`.
    UsePart(u32, Color),
    /// Shard-replicated whole-region instance of use `u` on `shard`.
    UseWhole(u32, u32),
    /// Reduction-temp instance of temp `t` for color `c`.
    TempPart(u32, Color),
    /// Whole-region reduction temp of temp `t` on `shard`.
    TempWhole(u32, u32),
}

/// One concrete exchange: move `elements` of the copy's fields from the
/// producer's instance to the consumer's.
#[derive(Clone, Debug)]
pub struct PairPlan {
    /// Shard executing the send (owner of the source instance).
    pub src_owner: usize,
    /// Shard applying the data (owner of the destination instance).
    pub dst_owner: usize,
    /// Source instance.
    pub src_key: InstKey,
    /// Destination instance.
    pub dst_key: InstKey,
    /// Exact elements exchanged (non-empty).
    pub elements: Domain,
    /// Global ordering key: position of the source child in its launch
    /// domain (applying pairs in this order reproduces the sequential
    /// fold order for reductions).
    pub order: usize,
}

/// Timings and sizes of the dynamic intersection computation (Table 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct SetupStats {
    /// Wall time of the shallow (which-pairs) phase, seconds.
    pub shallow_seconds: f64,
    /// Wall time of the complete (exact-elements) phase, seconds.
    pub complete_seconds: f64,
    /// Total surviving pairs across all intersection declarations.
    pub num_pairs: usize,
    /// Total elements across all pair element sets.
    pub total_elements: u64,
}

/// The evaluated exchange plan: per-intersection pair lists, globally
/// ordered.
pub struct ExchangePlan {
    /// Pair lists indexed by `IntersectId`.
    pub pairs: Vec<Vec<PairPlan>>,
    /// Timing/size statistics.
    pub setup: SetupStats,
}

/// One child of a source/destination shape: `(owner shard, instance
/// key, covered elements, global order)`.
type ShapeChild = (usize, InstKey, Domain, usize);

fn part_children(
    spmd: &SpmdProgram,
    part: regent_region::PartitionId,
    domain: regent_cr::DomainId,
    mk: impl Fn(Color) -> InstKey,
) -> Vec<ShapeChild> {
    let colors = &spmd.launch_domains[domain.0 as usize];
    colors
        .iter()
        .enumerate()
        .map(|(pos, &c)| {
            let sub = spmd.forest.subregion(part, c);
            (
                spmd.owner_of_pos(domain, pos),
                mk(c),
                spmd.forest.domain(sub).clone(),
                pos,
            )
        })
        .collect()
}

fn whole_children(
    spmd: &SpmdProgram,
    region: regent_region::RegionId,
    mk: impl Fn(u32) -> InstKey,
) -> Vec<ShapeChild> {
    let dom = spmd.forest.domain(region).clone();
    (0..spmd.num_shards)
        .map(|s| (s, mk(s as u32), dom.clone(), s))
        .collect()
}

fn source_shape(spmd: &SpmdProgram, src: CopySource) -> Vec<ShapeChild> {
    match src {
        CopySource::Use(u) => {
            let decl = &spmd.uses[u];
            match decl.base {
                UseBase::Part(p) => {
                    part_children(spmd, p, decl.domain, |c| InstKey::UsePart(u as u32, c))
                }
                UseBase::Whole(r) => whole_children(spmd, r, |s| InstKey::UseWhole(u as u32, s)),
            }
        }
        CopySource::Temp(t) => {
            let decl = &spmd.temps[t.0 as usize];
            match decl.base {
                UseBase::Part(p) => {
                    part_children(spmd, p, decl.domain, |c| InstKey::TempPart(t.0, c))
                }
                UseBase::Whole(r) => whole_children(spmd, r, |s| InstKey::TempWhole(t.0, s)),
            }
        }
    }
}

fn dest_shape(spmd: &SpmdProgram, dst: usize) -> Vec<ShapeChild> {
    let decl = &spmd.uses[dst];
    match decl.base {
        UseBase::Part(p) => {
            part_children(spmd, p, decl.domain, |c| InstKey::UsePart(dst as u32, c))
        }
        UseBase::Whole(r) => whole_children(spmd, r, |s| InstKey::UseWhole(dst as u32, s)),
    }
}

/// Evaluates every intersection declaration of the program.
pub fn build_exchange_plan(spmd: &SpmdProgram) -> ExchangePlan {
    let mut pairs: Vec<Vec<PairPlan>> = Vec::with_capacity(spmd.intersects.len());
    let mut setup = SetupStats::default();
    for decl in &spmd.intersects {
        let src = source_shape(spmd, decl.src);
        let dst = dest_shape(spmd, decl.dst);

        // Shallow phase: which (src child, dst child) pairs overlap.
        let t0 = Instant::now();
        let shallow: Vec<(usize, usize)> = {
            let src_list: Vec<(Color, Domain)> = src
                .iter()
                .enumerate()
                .map(|(i, (_, _, d, _))| (Color::from(i as i64), d.clone()))
                .collect();
            let dst_list: Vec<(Color, Domain)> = dst
                .iter()
                .enumerate()
                .map(|(j, (_, _, d, _))| (Color::from(j as i64), d.clone()))
                .collect();
            shallow_intersections_of(&src_list, &dst_list)
                .into_iter()
                .map(|p| (p.src.coord(0) as usize, p.dst.coord(0) as usize))
                .collect()
        };
        setup.shallow_seconds += t0.elapsed().as_secs_f64();

        // Complete phase: exact element sets for surviving pairs.
        let t1 = Instant::now();
        let mut list: Vec<PairPlan> = shallow
            .into_iter()
            .map(|(i, j)| {
                let (so, sk, sd, spos) = &src[i];
                let (do_, dk, dd, _) = &dst[j];
                PairPlan {
                    src_owner: *so,
                    dst_owner: *do_,
                    src_key: *sk,
                    dst_key: *dk,
                    elements: sd.intersect(dd),
                    order: *spos,
                }
            })
            .filter(|p| !p.elements.is_empty())
            .collect();
        // Global deterministic order: source position, then destination
        // key — this is the order consumers apply data in, which
        // reproduces sequential fold order for reductions.
        list.sort_by_key(|a| (a.order, a.dst_key));
        setup.complete_seconds += t1.elapsed().as_secs_f64();
        setup.num_pairs += list.len();
        setup.total_elements += list.iter().map(|p| p.elements.volume()).sum::<u64>();
        pairs.push(list);
    }
    ExchangePlan { pairs, setup }
}
