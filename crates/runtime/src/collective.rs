//! Synchronization primitives for shard execution.
//!
//! * [`DynamicCollective`] — the scalar all-reduce of §4.4: "scalars are
//!   accumulated into local values that are then reduced across the
//!   machine with a Legion dynamic collective... The result is then
//!   broadcast to all shards." Fold order is shard-index order, which —
//!   combined with block ownership — reproduces the sequential fold
//!   order bit-for-bit.
//! * [`ShardBarrier`] — a reusable lock-free barrier for the naive
//!   synchronization mode (Fig. 4c): atomic arrival counter plus a
//!   published generation word, with backoff parking instead of a
//!   mutex/condvar rendezvous.
//!
//! Both primitives expose their *generation* numbers (`*_counted`
//! variants) so callers can record synchronization events the trace
//! validator can correlate across shard event logs.

use crate::ring::{Backoff, CachePadded};
use regent_fault::PeerDeath;
use regent_region::{fnv1a, ReductionOp};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A checksum-framed collective contribution: the scalar's bit pattern
/// plus an FNV-1a checksum computed by the producer *before* the value
/// entered the (corruptible) transport. The integrity layer verifies
/// the frame on acceptance into the collective, so a silently flipped
/// contribution never reaches the fold.
#[derive(Clone, Copy, Debug)]
pub struct FramedScalar {
    /// The contribution's `f64::to_bits` pattern.
    pub bits: u64,
    /// FNV-1a checksum of `bits` at production time.
    pub checksum: u64,
}

impl FramedScalar {
    /// Frames `value` with a fresh checksum.
    pub fn new(value: f64) -> Self {
        let bits = value.to_bits();
        FramedScalar {
            bits,
            checksum: fnv1a([bits]),
        }
    }

    /// True when the payload still matches its checksum.
    pub fn verify(&self) -> bool {
        fnv1a([self.bits]) == self.checksum
    }

    /// The carried scalar.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits)
    }
}

/// How long a blocking wait (barrier, collective, copy receive) may
/// stall before the executor declares a likely deadlock and panics
/// with a diagnostic instead of hanging a CI job for hours. Override
/// with `REGENT_HANG_TIMEOUT_MS`.
///
/// The variable is parsed once per process and cached: this sits on
/// every `recv_timeout` of the hot exchange paths, and a `getenv` +
/// parse per message is measurable there.
pub fn hang_timeout() -> Duration {
    static CACHED: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        let ms = std::env::var("REGENT_HANG_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30_000u64);
        Duration::from_millis(ms)
    })
}

struct CollectiveState {
    generation: u64,
    arrived: usize,
    /// Per-shard contributions for the current generation (folded in
    /// shard order when complete, for determinism).
    contributions: Vec<Option<f64>>,
    result: f64,
    /// Set when a participant died: every current and future waiter
    /// unwinds with a diagnostic instead of blocking forever.
    poisoned: bool,
    /// Structured root cause of the poisoning, when known. First writer
    /// wins: secondary failures cascading through the poison never
    /// overwrite the original death.
    cause: Option<PeerDeath>,
}

/// Renders a poison cause as a diagnostic suffix (`"" ` when unknown).
fn cause_suffix(cause: &Option<PeerDeath>) -> String {
    match cause {
        Some(d) => format!(" [{d}]"),
        None => String::new(),
    }
}

/// A reusable all-reduce over `n` participants.
pub struct DynamicCollective {
    n: usize,
    state: Mutex<CollectiveState>,
    cv: Condvar,
}

impl DynamicCollective {
    /// Creates a collective for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        DynamicCollective {
            n,
            state: Mutex::new(CollectiveState {
                generation: 0,
                arrived: 0,
                contributions: vec![None; n],
                result: 0.0,
                poisoned: false,
                cause: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Marks the collective dead — called when a participating shard
    /// panics so the survivors unwind instead of waiting forever on a
    /// contribution that will never arrive.
    pub fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Like [`DynamicCollective::poison`], recording the structured
    /// root cause so survivors unwind with blame instead of a generic
    /// diagnostic. The first recorded cause wins.
    pub fn poison_with(&self, death: PeerDeath) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.poisoned = true;
        if st.cause.is_none() {
            st.cause = Some(death);
        }
        self.cv.notify_all();
    }

    /// The structured cause of poisoning, when one was recorded.
    pub fn poisoned_by(&self) -> Option<PeerDeath> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).cause
    }

    /// Contributes `value` for `shard` and blocks until every
    /// participant of this generation has contributed; returns the fold
    /// of all contributions in shard order.
    pub fn reduce(&self, shard: usize, value: f64, op: ReductionOp) -> f64 {
        self.reduce_counted(shard, value, op).0
    }

    /// Like [`DynamicCollective::reduce`], also returning the
    /// generation number this contribution belonged to.
    pub fn reduce_counted(&self, shard: usize, value: f64, op: ReductionOp) -> (f64, u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.poisoned {
            panic!(
                "dynamic collective poisoned: a participating shard died{} (shard {shard} unwinding)",
                cause_suffix(&st.cause)
            );
        }
        let my_gen = st.generation;
        debug_assert!(st.contributions[shard].is_none(), "double contribution");
        st.contributions[shard] = Some(value);
        st.arrived += 1;
        if st.arrived == self.n {
            // Last arriver folds in deterministic shard order and
            // advances the generation.
            let mut acc = st.contributions[0].take().unwrap();
            for s in 1..self.n {
                acc = op.fold(acc, st.contributions[s].take().unwrap());
            }
            st.result = acc;
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return (acc, my_gen);
        }
        while st.generation == my_gen {
            let (guard, timeout) = self
                .cv
                .wait_timeout(st, hang_timeout())
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
            if st.poisoned {
                panic!(
                    "dynamic collective poisoned: a participating shard died{} (shard {shard} unwinding at generation {my_gen})",
                    cause_suffix(&st.cause)
                );
            }
            if timeout.timed_out() && st.generation == my_gen {
                panic!(
                    "likely deadlock: shard {shard} waited {:?} on collective generation {my_gen} ({}/{} contributions arrived)",
                    hang_timeout(),
                    st.arrived,
                    self.n
                );
            }
        }
        (st.result, my_gen)
    }

    /// Checksum-verified contribution: `make_frame(attempt)` produces
    /// the framed payload for each delivery attempt (the fault injector
    /// may corrupt individual attempts); the frame is verified *before*
    /// acceptance into the fold and re-produced on mismatch, up to
    /// `max_attempts`. Returns the fold result, the generation, and the
    /// number of corrupted attempts absorbed.
    ///
    /// # Panics
    /// When `max_attempts` consecutive frames fail verification — at
    /// that point the contribution is unrecoverable and the run must
    /// fail rather than fold a corrupted scalar.
    pub fn reduce_framed(
        &self,
        shard: usize,
        op: ReductionOp,
        max_attempts: u32,
        mut make_frame: impl FnMut(u32) -> FramedScalar,
    ) -> (f64, u64, u32) {
        let mut attempt = 0;
        loop {
            let frame = make_frame(attempt);
            if frame.verify() {
                let (result, generation) = self.reduce_counted(shard, frame.value(), op);
                return (result, generation, attempt);
            }
            attempt += 1;
            if attempt >= max_attempts {
                panic!(
                    "unrecoverable collective corruption: shard {shard} produced \
                     {max_attempts} corrupted contributions in a row"
                );
            }
        }
    }
}

/// A reusable barrier over `n` participants.
///
/// Lock-free: arrival is one `fetch_add` on a padded counter and the
/// epoch is published through a generation word, so the per-round cost
/// is two cache-line transfers instead of a mutex/condvar rendezvous.
/// Waiters park with [`Backoff`] (spin → yield → micro-sleep) bounded
/// by [`hang_timeout`], and a poisoned flag preserves the unwinding
/// diagnostics of the lock-based barrier it replaced.
///
/// Ordering argument: each arrival's `AcqRel` `fetch_add` reads the
/// previous arrival's, so the last arriver happens-after every
/// participant's pre-barrier writes; it then `Release`-stores the next
/// generation, which every waiter `Acquire`-loads — making all
/// pre-barrier writes visible to all post-barrier reads, transitively.
/// The `arrived` counter is reset *before* the generation is
/// published, and waiters never touch `arrived` while parked, so
/// re-entrant arrivals for the next round (which must first observe
/// the new generation) always see the reset.
pub struct ShardBarrier {
    n: usize,
    generation: CachePadded<AtomicU64>,
    arrived: CachePadded<AtomicUsize>,
    poisoned: AtomicBool,
    /// Structured root cause, written (once) before the `poisoned`
    /// flag's release store so any waiter that observes the flag also
    /// observes the cause. Off the hot path: only touched on death.
    cause: Mutex<Option<PeerDeath>>,
}

impl ShardBarrier {
    /// Creates a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        ShardBarrier {
            n,
            generation: CachePadded(AtomicU64::new(0)),
            arrived: CachePadded(AtomicUsize::new(0)),
            poisoned: AtomicBool::new(false),
            cause: Mutex::new(None),
        }
    }

    /// Marks the barrier dead — called when a participating shard
    /// panics so the survivors unwind with a diagnostic instead of
    /// waiting forever for an arrival that will never come. Parked
    /// waiters poll the flag, so no wakeup broadcast is needed.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Like [`ShardBarrier::poison`], recording the structured root
    /// cause (first writer wins) so waiters unwind with blame.
    pub fn poison_with(&self, death: PeerDeath) {
        {
            let mut c = self.cause.lock().unwrap_or_else(|e| e.into_inner());
            if c.is_none() {
                *c = Some(death);
            }
        }
        self.poisoned.store(true, Ordering::Release);
    }

    /// The structured cause of poisoning, when one was recorded.
    pub fn poisoned_by(&self) -> Option<PeerDeath> {
        *self.cause.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until all `n` participants have arrived.
    pub fn wait(&self) {
        self.wait_counted();
    }

    /// Like [`ShardBarrier::wait`], returning the generation number
    /// this arrival belonged to.
    pub fn wait_counted(&self) -> u64 {
        if self.poisoned.load(Ordering::Acquire) {
            panic!(
                "shard barrier poisoned: a participating shard died{}",
                cause_suffix(&self.poisoned_by())
            );
        }
        if self.n == 1 {
            // Single-shard fast path: there is nobody to rendezvous
            // with — advance the generation and keep going.
            return self.generation.fetch_add(1, Ordering::Relaxed);
        }
        // Safe to read before arriving: the generation cannot advance
        // until all `n` participants (including us) have arrived.
        let my_gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(my_gen + 1, Ordering::Release);
            return my_gen;
        }
        let deadline = Instant::now() + hang_timeout();
        let mut backoff = Backoff::new();
        while self.generation.load(Ordering::Acquire) == my_gen {
            if self.poisoned.load(Ordering::Acquire) {
                panic!(
                    "shard barrier poisoned: a participating shard died{} (unwinding at generation {my_gen})",
                    cause_suffix(&self.poisoned_by())
                );
            }
            if Instant::now() >= deadline {
                panic!(
                    "likely deadlock: waited {:?} at barrier generation {my_gen} ({}/{} arrived)",
                    hang_timeout(),
                    self.arrived.load(Ordering::Relaxed),
                    self.n
                );
            }
            backoff.snooze();
        }
        my_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn allreduce_sums_deterministically() {
        let n = 8;
        let c = Arc::new(DynamicCollective::new(n));
        let handles: Vec<_> = (0..n)
            .map(|s| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.reduce(s, (s + 1) as f64, ReductionOp::Add))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 36.0);
        }
    }

    #[test]
    fn allreduce_reusable_generations() {
        let n = 4;
        let c = Arc::new(DynamicCollective::new(n));
        let handles: Vec<_> = (0..n)
            .map(|s| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut results = Vec::new();
                    for round in 0..10 {
                        let v = (s * 10 + round) as f64;
                        let (r, generation) = c.reduce_counted(s, v, ReductionOp::Max);
                        assert_eq!(generation, round as u64);
                        results.push(r);
                    }
                    results
                })
            })
            .collect();
        for h in handles {
            let results = h.join().unwrap();
            for (round, r) in results.into_iter().enumerate() {
                assert_eq!(r, (30 + round) as f64);
            }
        }
    }

    #[test]
    fn framed_reduce_retries_corrupt_frames() {
        let n = 3;
        let c = Arc::new(DynamicCollective::new(n));
        let handles: Vec<_> = (0..n)
            .map(|s| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    c.reduce_framed(s, ReductionOp::Add, 10, |attempt| {
                        let mut f = FramedScalar::new((s + 1) as f64);
                        // Shard 1's first two attempts arrive corrupted.
                        if s == 1 && attempt < 2 {
                            f.bits ^= 1 << 17;
                        }
                        f
                    })
                })
            })
            .collect();
        for (s, h) in handles.into_iter().enumerate() {
            let (result, generation, bad) = h.join().unwrap();
            assert_eq!(result, 6.0);
            assert_eq!(generation, 0);
            assert_eq!(bad, if s == 1 { 2 } else { 0 });
        }
    }

    #[test]
    fn framed_reduce_exhaustion_panics() {
        let c = DynamicCollective::new(1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.reduce_framed(0, ReductionOp::Add, 3, |_| {
                let mut f = FramedScalar::new(1.0);
                f.bits ^= 1;
                f
            })
        }))
        .expect_err("all-corrupt frames must fail the run");
        let msg = panic_msg(err);
        assert!(msg.contains("unrecoverable collective corruption"), "{msg}");
    }

    #[test]
    fn allreduce_min_single() {
        let c = DynamicCollective::new(1);
        assert_eq!(c.reduce(0, 5.0, ReductionOp::Min), 5.0);
        assert_eq!(c.reduce(0, -2.0, ReductionOp::Min), -2.0);
    }

    fn panic_msg(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("panic payload should be a message")
    }

    #[test]
    fn poisoned_barrier_unwinds_waiters() {
        let b = Arc::new(ShardBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // The "third shard" dies instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        for h in waiters {
            let msg = panic_msg(h.join().expect_err("waiter should unwind"));
            assert!(msg.contains("poisoned"), "diagnostic: {msg}");
        }
        // Late arrivals also unwind immediately.
        let b2 = Arc::clone(&b);
        let late = std::thread::spawn(move || b2.wait());
        assert!(late.join().is_err());
    }

    #[test]
    fn poison_with_cause_reaches_waiters() {
        use regent_fault::DeathCause;
        let b = Arc::new(ShardBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || b2.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison_with(PeerDeath {
            shard: 1,
            cause: DeathCause::Killed { epoch: 3 },
        });
        // A later, different cause must not overwrite the first.
        b.poison_with(PeerDeath {
            shard: 0,
            cause: DeathCause::Panicked,
        });
        let msg = panic_msg(waiter.join().expect_err("waiter should unwind"));
        assert!(msg.contains("poisoned"), "diagnostic: {msg}");
        assert!(msg.contains("shard 1 killed at epoch 3"), "blame: {msg}");
        assert_eq!(b.poisoned_by().unwrap().shard, 1);

        let c = Arc::new(DynamicCollective::new(2));
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || c2.reduce(0, 1.0, ReductionOp::Add));
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.poison_with(PeerDeath {
            shard: 1,
            cause: DeathCause::Hung,
        });
        let msg = panic_msg(waiter.join().expect_err("waiter should unwind"));
        assert!(msg.contains("poisoned"), "diagnostic: {msg}");
        assert!(msg.contains("shard 1 hung"), "blame: {msg}");
    }

    #[test]
    fn poisoned_collective_unwinds_waiters() {
        let c = Arc::new(DynamicCollective::new(2));
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || c2.reduce(0, 1.0, ReductionOp::Add));
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.poison();
        let msg = panic_msg(waiter.join().expect_err("waiter should unwind"));
        assert!(msg.contains("poisoned"), "diagnostic: {msg}");
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 6;
        let b = Arc::new(ShardBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&b);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 1..=20 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        let g = b.wait_counted();
                        // After the barrier, all n increments of this
                        // round must be visible.
                        assert!(counter.load(Ordering::SeqCst) >= n * round);
                        assert_eq!(g as usize, 2 * round - 2);
                        b.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), n * 20);
    }

    /// A single-shard barrier must be a wait-free formality: no peers
    /// exist, so arrival alone advances the generation (previously it
    /// took the mutex even for `n == 1`).
    #[test]
    fn single_shard_barrier_is_a_fast_path() {
        let b = ShardBarrier::new(1);
        for round in 0..1000u64 {
            assert_eq!(b.wait_counted(), round);
        }
        b.wait(); // generation 1000, uncounted
        assert_eq!(b.wait_counted(), 1001);
        // Poison still unwinds late arrivals, fast path or not.
        b.poison();
        let msg = panic_msg(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()))
                .expect_err("poisoned barrier should unwind"),
        );
        assert!(msg.contains("poisoned"), "diagnostic: {msg}");
    }
}
