//! A dependency-free Prometheus scrape endpoint.
//!
//! `REGENT_METRICS=<path>` writes telemetry at process exit; this
//! module serves the same registry *while the process runs*. It is a
//! deliberately tiny HTTP/1.1 server on [`std::net::TcpListener`] —
//! no framework, no async runtime, in keeping with the workspace's
//! zero-dependency rule — because a scrape is one short-lived GET
//! returning a text body: a sequential accept loop on one thread is
//! both sufficient and robust.
//!
//! `GET /metrics` (or `/`) returns the always-on registry exposition
//! ([`MetricsRegistry::to_prometheus`](crate::metrics::MetricsRegistry::to_prometheus))
//! followed by the live plane's sliding-window gauges
//! ([`LivePlane::to_prometheus`](crate::live::LivePlane::to_prometheus)),
//! so one scrape carries both lifetime totals and the now-view.
//!
//! Enable with `REGENT_METRICS_ADDR=<host:port>` (port `0` picks a
//! free port; [`ScrapeServer::local_addr`] reports it). The kill
//! switch `REGENT_METRICS_OFF` disables the endpoint along with the
//! registry, the live plane, and the flight recorder.

use crate::live::live;
use crate::metrics::global;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running scrape server. Dropping it stops the accept
/// loop and joins the serving thread.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Starts the scrape server if `REGENT_METRICS_ADDR` is set and
/// telemetry is not killed by `REGENT_METRICS_OFF`. Bind errors are
/// reported to stderr and swallowed — an unreachable metrics port
/// must not take the service down with it.
pub fn start_env() -> Option<ScrapeServer> {
    let addr = std::env::var("REGENT_METRICS_ADDR").ok()?;
    if std::env::var_os("REGENT_METRICS_OFF").is_some() {
        return None;
    }
    match start(&addr) {
        Ok(server) => Some(server),
        Err(e) => {
            eprintln!("scrape endpoint: cannot bind {addr}: {e}");
            None
        }
    }
}

/// Binds `addr` and serves scrapes on a background thread until the
/// returned handle is dropped.
pub fn start(addr: &str) -> std::io::Result<ScrapeServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("regent-scrape".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = conn {
                    // One scrape at a time: the body is cheap to build
                    // and Prometheus scrapes are serialized per target.
                    let _ = serve_one(stream);
                }
            }
        })?;
    Ok(ScrapeServer {
        addr,
        stop,
        thread: Some(thread),
    })
}

impl ScrapeServer {
    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The exposition body served to scrapers: registry totals followed by
/// live-window gauges.
pub fn exposition() -> String {
    let mut body = global().to_prometheus();
    body.push_str(&live().to_prometheus());
    body
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head; scrapes carry no body.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/metrics") | ("GET", "/") => ("200 OK", exposition()),
        ("GET", _) => ("404 Not Found", String::from("not found\n")),
        _ => ("405 Method Not Allowed", String::from("GET only\n")),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// Minimal scrape client for `regent-prof --live` and tests: fetches
/// `http://addr/metrics` and returns the exposition body.
pub fn fetch(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(std::io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_exposition_and_routes() {
        let server = start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.local_addr().to_string();
        // The body may be empty (no metrics recorded yet in this
        // process) but the round-trip must succeed.
        let body = fetch(&addr).expect("scrape /metrics");
        assert!(body.is_empty() || body.contains("regent_"));

        // Unknown paths 404 without killing the server.
        let mut s = TcpStream::connect(&addr).unwrap();
        write!(
            s,
            "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 404"));
        assert!(fetch(&addr).is_ok());
        drop(server);
        // After drop the port no longer accepts scrapes.
        assert!(fetch(&addr).is_err());
    }
}
