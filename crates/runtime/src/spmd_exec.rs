//! Multithreaded executor for control-replicated programs.
//!
//! Each shard of the [`SpmdProgram`] runs on its own OS thread with its
//! own *distributed-memory* storage: one instance per owned subregion
//! per use, plus reduction temporaries (§3, §4.3). Shards communicate
//! only through copy messages and the scalar collective — there is no
//! shared mutable region data, which is exactly the paper's
//! distributed-memory implementation of region semantics.
//!
//! Synchronization follows the consumer-applied protocol of §3.4:
//! copies "are issued by the producer of the data", and the consumer
//! blocks on the matching receive at its own copy point. The receive
//! doubles as the point-to-point synchronization — write-after-read is
//! satisfied because the consumer only applies data between its own
//! statements, read-after-write because it cannot proceed until the
//! data arrives. The naive global-barrier mode (Fig. 4c) adds
//! [`ShardBarrier`] waits around every copy.
//!
//! With an enabled [`Tracer`] (the `*_traced` entry points) every shard
//! records its runs, accesses, copy issues/applies, and collective
//! generations on its own track — enough for the `regent-trace` Spy
//! validator to reconstruct the execution's happens-before graph and
//! certify every cross-shard dependence.
//!
//! ## Resilience (checkpoint–restart)
//!
//! [`execute_spmd_resilient`] runs the same program under a
//! deterministic [`FaultPlan`]: every shard snapshots its instances
//! and scalar environment at epoch boundaries (an *epoch* is one
//! outermost-loop iteration), and when the plan schedules a shard
//! crash, all shards roll back to the last snapshot together and
//! replay. This is *coordinated replicated rollback*: because control
//! flow is replicated and the fault plan is shared, every shard
//! independently reaches the same crash decision at the same epoch, so
//! no recovery messages are needed — exactly the property that makes
//! control-replicated programs cheap to checkpoint. Channels are
//! provably empty at epoch boundaries (each copy's sends are consumed
//! by the matching receives within the same iteration on both sides),
//! so replay re-sends and re-receives in lockstep. Recovered results
//! are bit-identical to a fault-free run; trace identities
//! (`launch_seq`, copy occurrences) are *not* rolled back, so replayed
//! work gets fresh identities and the Spy validator certifies the
//! recovered trace like any other.
//!
//! ## Integrity (silent-data-corruption detection and repair)
//!
//! With [`ResilienceOptions::integrity`] (or any nonzero
//! `FaultPlan::corrupt_rate`) the executor becomes end-to-end
//! checksummed. Every physical instance carries an FNV-1a *seal*,
//! established after allocation and re-established at each point where
//! the protocol makes its contents authoritative: task completion (for
//! every argument held with a mutating privilege), copy application,
//! and reduction-temp reset. Every exchange payload travels as a
//! checksummed frame and every collective contribution as a
//! [`FramedScalar`]; both are verified *on receipt*, before the data
//! can contaminate the fold or the destination instance.
//!
//! Repair is localized when redundancy exists and escalates when it
//! does not:
//!
//! * **Exchange / collective frames** — the producer still holds the
//!   clean payload, so the consumer simply keeps receiving until a
//!   frame verifies. Because the corruption predicate is pure and
//!   seeded (`FaultPlan::payload_corruption`), the producer *knows*
//!   which transmissions arrive corrupted and proactively retransmits
//!   — no acknowledgement channel is needed. Retransmissions are
//!   bounded by [`RetryPolicy::max_attempts`]; exhaustion is
//!   unrecoverable and fail-stops the run.
//! * **Resident instances** — no peer holds a redundant copy of a
//!   shard's owned data, so the checkpoint is the redundancy: a seal
//!   mismatch found by the epoch-boundary verification sweep escalates
//!   to the coordinated rollback above (and invalidates any cached
//!   epoch templates, whose captured schedules came from the undone
//!   epochs). The decision is replicated — every shard evaluates the
//!   same `FaultPlan::resident_corruption` predicate — so recovery
//!   stays coordination-free.
//!
//! Detection, repair, and escalation are visible as `CorruptDetected`
//! / `CorruptRepaired` / `CorruptEscalated` trace events, summarized
//! by `regent_trace::integrity_summary` and certified by the Spy
//! validator's unrepaired-corruption check. Recovered results remain
//! bit-identical to a fault-free run.

use crate::cancel::CancelToken;
use crate::collective::{hang_timeout, DynamicCollective, FramedScalar, ShardBarrier};
use crate::memo::MemoCache;
use crate::metrics::{self, Counter, MetricsHandle, Timer};
use crate::plan::{build_exchange_plan, ExchangePlan, InstKey, PairPlan, SetupStats};
use crate::pool::{clone_insts_into, ChunkPool};
use crate::ring::{self, CopyRx, CopyTx};
use regent_cr::spmd::block_range;
use regent_cr::{CopyId, CopyStmt, SpmdArg, SpmdLaunch, SpmdProgram, SpmdStmt, TempId, UseBase};
use regent_fault::{message_key, DeathCause, FaultPlan, PeerDeath, RetryPolicy, SHARD_LOSS_PREFIX};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{ArgSlot, Privilege, Store, TaskCtx};
use regent_region::checksum::StripedFnv;
use regent_region::{copy_fields, ColumnData, FieldId, Instance, ReductionOp, RegionId};
use regent_trace::{fields_mask, CorruptSite, EventKind, TraceBuf, Tracer};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};

/// [`message_key`] domain tag for exchange payload corruption ("EXCH").
const EXCHANGE_TAG: u64 = 0x4558_4348;
/// [`message_key`] domain tag for collective frame corruption ("COLL").
const COLLECTIVE_TAG: u64 = 0x434F_4C4C;

/// One field's payload within a copy message, in the canonical element
/// order of the pair's intersection domain.
#[derive(Clone, Debug)]
pub(crate) enum Chunk {
    F64(Vec<f64>),
    I64(Vec<i64>),
}

/// A copy message from a producer shard to a consumer shard. Under the
/// integrity protocol the payload is framed: `checksum` covers the
/// *intended* chunks, so a frame corrupted in flight fails verification
/// on receipt, and `attempt` numbers the retransmissions of one logical
/// payload.
pub(crate) struct CopyMsg {
    copy: CopyId,
    pair_seq: u32,
    /// Retransmission number of this frame (0 = first transmission).
    attempt: u32,
    /// FNV-1a checksum of the uncorrupted payload; 0 (never verified)
    /// when the integrity layer is off.
    checksum: u64,
    chunks: Vec<Chunk>,
}

/// Checksum of a copy payload, computed in place over the borrowed
/// chunk slices: each chunk contributes a length header (complemented
/// for i64 so the two column kinds can never alias) followed by its
/// raw element bits. Uses the 4-lane [`StripedFnv`] — frame hashing
/// runs once on the producer and once on the consumer of every
/// message, and the striped lanes auto-vectorize here, measuring
/// faster in situ than both the scalar FNV chain they replaced and
/// the multiply-fold alternative benchmarked in `fig_dataplane`.
fn chunks_checksum(chunks: &[Chunk]) -> u64 {
    let mut h = StripedFnv::new();
    for ch in chunks {
        match ch {
            Chunk::F64(v) => {
                h.mix(v.len() as u64);
                h.mix_f64s(v);
            }
            Chunk::I64(v) => {
                h.mix(!(v.len() as u64));
                h.mix_i64s(v);
            }
        }
    }
    h.finish()
}

/// Flips one entropy-selected bit in a copy payload — the in-flight
/// corruption the receive-side checksum must catch. Returns `false`
/// for an empty payload (nothing to corrupt).
fn corrupt_chunks(chunks: &mut [Chunk], entropy: u64) -> bool {
    let total: usize = chunks
        .iter()
        .map(|c| match c {
            Chunk::F64(v) => v.len(),
            Chunk::I64(v) => v.len(),
        })
        .sum();
    if total == 0 {
        return false;
    }
    let mut slot = (entropy % total as u64) as usize;
    let bit = (entropy >> 40) % 64;
    for ch in chunks {
        let len = match ch {
            Chunk::F64(v) => v.len(),
            Chunk::I64(v) => v.len(),
        };
        if slot < len {
            match ch {
                Chunk::F64(v) => v[slot] = f64::from_bits(v[slot].to_bits() ^ (1u64 << bit)),
                Chunk::I64(v) => v[slot] = (v[slot] as u64 ^ (1u64 << bit)) as i64,
            }
            return true;
        }
        slot -= len;
    }
    unreachable!("slot selection within total payload length")
}

/// Per-shard execution statistics.
///
/// The work counters (tasks, copies, messages, collectives) count
/// *useful* work only: epochs re-executed after a rollback are
/// excluded, so a recovered resilient run reports the same work
/// numbers as a fault-free run. The replayed volume is reported
/// separately (`restores`, `epochs_replayed`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Point tasks executed by this shard.
    pub tasks_executed: u64,
    /// Copy statements executed (dynamic count).
    pub copies_executed: u64,
    /// Messages sent to other shards.
    pub messages_sent: u64,
    /// Elements sent to other shards (across all fields).
    pub elements_sent: u64,
    /// Scalar collectives participated in.
    pub collectives: u64,
    /// Epoch-boundary checkpoints taken (resilient mode).
    pub checkpoints: u64,
    /// Rollback restores performed after an injected crash.
    pub restores: u64,
    /// Outermost-loop epochs re-executed because of rollbacks.
    pub epochs_replayed: u64,
    /// Silent corruptions injected by the fault plan on this shard
    /// (payload frames it sent corrupted plus resident bit flips it
    /// suffered). Like `restores`, counted unconditionally — these are
    /// resilience metrics, not useful-work metrics.
    pub corruptions_injected: u64,
    /// Checksum/seal verification failures detected by this shard.
    pub corruptions_detected: u64,
    /// Corrupted payloads repaired locally (a verified retransmission
    /// arrived within the retry budget).
    pub corruptions_repaired: u64,
    /// Resident corruptions this shard suffered that escalated to a
    /// coordinated rollback.
    pub corruptions_escalated: u64,
}

impl ShardStats {
    /// Accumulates another stats record into this one.
    pub fn merge_from(&mut self, o: &ShardStats) {
        self.merge(o);
    }

    fn merge(&mut self, o: &ShardStats) {
        self.tasks_executed += o.tasks_executed;
        self.copies_executed += o.copies_executed;
        self.messages_sent += o.messages_sent;
        self.elements_sent += o.elements_sent;
        self.collectives += o.collectives;
        self.checkpoints += o.checkpoints;
        self.restores += o.restores;
        self.epochs_replayed += o.epochs_replayed;
        self.corruptions_injected += o.corruptions_injected;
        self.corruptions_detected += o.corruptions_detected;
        self.corruptions_repaired += o.corruptions_repaired;
        self.corruptions_escalated += o.corruptions_escalated;
    }
}

/// Configuration of a resilient SPMD run: a deterministic fault plan
/// (only its shard-crash events apply to the real executor — loss and
/// slowdown are machine-model concerns) plus the checkpoint cadence.
#[derive(Clone, Debug, Default)]
pub struct ResilienceOptions {
    /// Take a snapshot every `checkpoint_interval` epochs (0 ⇒ only
    /// the mandatory epoch-0 snapshot, so every crash replays from the
    /// start of the loop).
    pub checkpoint_interval: u64,
    /// The seeded fault plan; crashes fire at its scheduled epochs and
    /// its `corrupt_rate` drives silent-data-corruption injection.
    pub plan: FaultPlan,
    /// Forces the integrity layer (instance seals, framed exchanges
    /// and collectives, epoch-boundary verification sweeps) on even
    /// when `plan.corrupt_rate` is zero — the configuration used to
    /// measure the layer's fault-free overhead. A nonzero corruption
    /// rate enables integrity regardless of this flag.
    pub integrity: bool,
    /// Epoch-memoization cache to invalidate when corruption repair
    /// rolls region state back (captured templates embed schedule
    /// state from the undone epochs); see
    /// [`MemoCache::invalidate_for_repair`].
    pub memo: Option<Arc<Mutex<MemoCache>>>,
    /// Cooperative cancellation token for supervised runs, checked by
    /// every shard at every epoch boundary (deadline budgets, explicit
    /// supervisor cancels, injected transient faults). `None` for
    /// unsupervised runs.
    pub cancel: Option<CancelToken>,
    /// Supervisor-provided cross-attempt checkpoint slot: boundary
    /// snapshots are offered into it, and a fresh run with a committed
    /// checkpoint fast-forwards to it instead of starting from scratch
    /// — this is what makes a retried job resume from the last
    /// checkpoint. SPMD executor only (the shared-log sequencer cannot
    /// re-derive skipped `AllReduce` feedback, so log jobs retry from
    /// scratch).
    pub rescue: Option<Arc<RescueSlot>>,
    /// Shared death board for failover-aware runs: the first thread to
    /// die records a structured [`PeerDeath`] here, so the failover
    /// driver learns *which* shard was lost and *why* without parsing
    /// panic strings. `None` for plain runs.
    pub board: Option<Arc<DeathBoard>>,
}

impl ResilienceOptions {
    /// Builds options from the environment. `REGENT_FAULT_SEED` yields
    /// a seeded single-crash plan; `REGENT_CORRUPT=<seed>,<rate>`
    /// additionally (or on its own) arms silent-data-corruption
    /// injection with the integrity layer. These are the CI
    /// fault/corruption-smoke hooks — because recovery is
    /// bit-identical, the entire test suite must still pass with
    /// either variable exported.
    pub fn from_env(num_shards: usize) -> Option<ResilienceOptions> {
        let fault_seed = FaultPlan::seed_from_env();
        let corrupt = FaultPlan::corrupt_from_env();
        if fault_seed.is_none() && corrupt.is_none() {
            return None;
        }
        let mut plan = match fault_seed {
            Some(seed) => FaultPlan::seeded_crash(seed, num_shards, 4),
            None => FaultPlan::new(corrupt.expect("one of the two is set").0),
        };
        if let Some((_, rate)) = corrupt {
            plan = plan.with_corrupt_rate(rate);
        }
        Some(ResilienceOptions {
            checkpoint_interval: 2,
            plan,
            integrity: corrupt.is_some(),
            memo: None,
            cancel: None,
            rescue: None,
            board: None,
        })
    }
}

/// A shared record of shard deaths within one executor attempt. The
/// failover driver reads it after catching the attempt's panic to learn
/// the root cause without parsing diagnostics: kill and hang causes are
/// recorded *before* the poison cascade starts, and a panicking shard's
/// [`PanicGuard`] records itself only when the board is still empty —
/// so the first entry is always the root cause, never a secondary
/// unwind.
#[derive(Debug, Default)]
pub struct DeathBoard {
    deaths: Mutex<Vec<PeerDeath>>,
}

impl DeathBoard {
    /// An empty board.
    pub fn new() -> DeathBoard {
        DeathBoard::default()
    }

    /// Records a death. At most one entry per shard is kept (a shard
    /// dies once; later reports for the same shard are echoes).
    pub fn record(&self, death: PeerDeath) {
        let mut g = self.deaths.lock().unwrap_or_else(|e| e.into_inner());
        if g.iter().all(|d| d.shard != death.shard) {
            g.push(death);
        }
    }

    /// The first recorded death — the root cause of the attempt's
    /// failure.
    pub fn first(&self) -> Option<PeerDeath> {
        self.deaths
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .first()
            .copied()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.deaths
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// All recorded deaths, in recording order.
    pub fn snapshot(&self) -> Vec<PeerDeath> {
        self.deaths
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Clears the board for the next attempt.
    pub fn clear(&self) {
        self.deaths
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// Result of an SPMD execution.
pub struct SpmdRunResult {
    /// Final scalar environment (identical on all shards; shard 0's).
    pub env: Vec<f64>,
    /// Dynamic intersection timings (Table 1).
    pub setup: SetupStats,
    /// Aggregated execution statistics.
    pub stats: ShardStats,
    /// Per-shard statistics.
    pub per_shard: Vec<ShardStats>,
}

/// Executes a control-replicated program against `store` (which holds
/// the initial region contents and receives the final ones).
pub fn execute_spmd(spmd: &SpmdProgram, store: &mut Store) -> SpmdRunResult {
    execute_spmd_traced(spmd, store, &Tracer::disabled())
}

/// [`execute_spmd`] recording events into `tracer` (shard `s` records
/// on track `shard-s`).
pub fn execute_spmd_traced(
    spmd: &SpmdProgram,
    store: &mut Store,
    tracer: &Arc<Tracer>,
) -> SpmdRunResult {
    let env: Vec<f64> = spmd.scalars.iter().map(|s| s.init).collect();
    execute_spmd_with_env_traced(spmd, store, env, tracer)
}

/// [`execute_spmd`] with an explicit initial scalar environment —
/// needed by the hybrid range-local driver (§2.2), where scalars
/// computed before a replicated range flow into it.
pub fn execute_spmd_with_env(
    spmd: &SpmdProgram,
    store: &mut Store,
    initial_env: Vec<f64>,
) -> SpmdRunResult {
    execute_spmd_with_env_traced(spmd, store, initial_env, &Tracer::disabled())
}

/// [`execute_spmd_with_env`] recording events into `tracer`.
pub fn execute_spmd_with_env_traced(
    spmd: &SpmdProgram,
    store: &mut Store,
    initial_env: Vec<f64>,
    tracer: &Arc<Tracer>,
) -> SpmdRunResult {
    // CI fault smoke: REGENT_FAULT_SEED upgrades every plain run to a
    // resilient one with a seeded crash; results stay bit-identical.
    let env_opts = ResilienceOptions::from_env(spmd.num_shards);
    execute_spmd_inner(spmd, store, initial_env, tracer, env_opts.as_ref())
}

/// Executes a control-replicated program under a deterministic fault
/// plan with epoch-based checkpoint–restart (see the module docs).
/// Region contents and scalars come out bit-identical to a fault-free
/// run; `stats` additionally reports checkpoints, restores, and
/// replayed epochs.
pub fn execute_spmd_resilient(
    spmd: &SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
) -> SpmdRunResult {
    execute_spmd_resilient_traced(spmd, store, opts, &Tracer::disabled())
}

/// [`execute_spmd_resilient`] recording events into `tracer` —
/// including `CheckpointSave`, `ShardCrash`, and `CheckpointRestore`
/// marks on each shard's track.
pub fn execute_spmd_resilient_traced(
    spmd: &SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    tracer: &Arc<Tracer>,
) -> SpmdRunResult {
    let env: Vec<f64> = spmd.scalars.iter().map(|s| s.init).collect();
    execute_spmd_inner(spmd, store, env, tracer, Some(opts))
}

/// [`execute_spmd_resilient_traced`] with an explicit initial scalar
/// environment — the resilient analogue of
/// [`execute_spmd_with_env_traced`], used by the hybrid executor to
/// thread checkpoint–restart (and per-segment rescue slots) through
/// its replicated segments.
pub fn execute_spmd_with_env_resilient_traced(
    spmd: &SpmdProgram,
    store: &mut Store,
    initial_env: Vec<f64>,
    opts: &ResilienceOptions,
    tracer: &Arc<Tracer>,
) -> SpmdRunResult {
    execute_spmd_inner(spmd, store, initial_env, tracer, Some(opts))
}

fn execute_spmd_inner(
    spmd: &SpmdProgram,
    store: &mut Store,
    initial_env: Vec<f64>,
    tracer: &Arc<Tracer>,
    resilience: Option<&ResilienceOptions>,
) -> SpmdRunResult {
    let plan = build_exchange_plan(spmd);
    let ns = spmd.num_shards;
    let collective = DynamicCollective::new(ns);
    let barrier = ShardBarrier::new(ns);

    // Exchange mesh: senders[src][dst] paired with receivers[dst][src],
    // SPSC rings by default (`REGENT_DATA_PLANE=channel` restores the
    // legacy mpsc mesh — see the `ring` module docs).
    let (senders, receivers) =
        ring::copy_mesh::<CopyMsg>(ns, ring::data_plane_from_env(), ring::ring_cap_from_env());
    let pin = ring::pin_cores_enabled();

    let mut results: Vec<Option<(Vec<f64>, ShardStats, ShardData)>> =
        (0..ns).map(|_| None).collect();

    // Resolve a committed rescue checkpoint once, on the driver
    // thread, so every shard makes the same resume decision even if
    // new offers land while shards are spawning.
    let resume: Option<Arc<ResumeState>> = resilience
        .and_then(|o| o.rescue.as_ref())
        .and_then(|s| s.resume_state());

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ns);
        // Each shard takes ownership of exactly its sender row: when a
        // shard dies, its senders drop and every peer blocked on a
        // receive from it unwinds immediately instead of timing out.
        for (shard, (rx_row, tx_row)) in receivers.into_iter().zip(senders).enumerate() {
            let plan = &plan;
            let collective = &collective;
            let barrier = &barrier;
            let store_ref: &Store = store;
            let init_env = &initial_env;
            let tracer = Arc::clone(tracer);
            let resume = resume.clone();
            handles.push(scope.spawn(move || {
                // If this shard panics (e.g. a kernel bug), poison the
                // shared primitives on the way out so peers blocked in
                // a barrier or collective unwind with a diagnostic
                // rather than deadlocking.
                let _guard = PanicGuard {
                    barrier,
                    collective,
                    shard: shard as u32,
                    board: resilience.and_then(|o| o.board.clone()),
                };
                if pin {
                    ring::pin_thread_to_core(shard);
                }
                let mut data = allocate_shard_data(spmd, shard, store_ref);
                if resilience.is_some_and(|o| o.integrity || o.plan.corrupt_rate > 0.0) {
                    // Initial seal: from here on every instance is
                    // verified at each epoch boundary.
                    for inst in data.insts.values_mut() {
                        inst.seal();
                    }
                }
                let mut shard_exec = ShardExec {
                    spmd,
                    plan,
                    shard,
                    data,
                    env: init_env.clone(),
                    tx: tx_row,
                    rx: rx_row,
                    collective,
                    barrier,
                    stats: ShardStats::default(),
                    local_queue: HashMap::new(),
                    offset_cache: HashMap::new(),
                    tb: tracer.buffer(&format!("shard-{shard}")),
                    mx: metrics::global().handle(&format!("shard-{shard}")),
                    launch_seq: 0,
                    loop_depth: 0,
                    copy_occurrence: HashMap::new(),
                    collective_seq: 0,
                    epoch: 0,
                    replay_until: 0,
                    resilience: resilience.map(|o| {
                        let mut r = Resilience::new(o);
                        r.resume = resume;
                        r
                    }),
                    outer_loop_seq: 0,
                    pool: ChunkPool::new(),
                };
                shard_exec.run_stmts(&spmd.body);
                shard_exec.flush_pool_metrics();
                shard_exec.tb.flush();
                (shard_exec.env, shard_exec.stats, shard_exec.data)
            }));
        }
        // Join every shard before reporting a failure: panicking while
        // the scope still holds unjoined (also-panicking) handles would
        // double-panic and abort the process.
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (shard, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[shard] = Some(r),
                Err(e) => failures.push((shard, panic_message(&*e))),
            }
        }
        // Report the root cause: "poisoned", "copy channel closed",
        // and "likely deadlock" unwinds are secondary diagnostics (the
        // victim of another shard's death noticing its peer is gone),
        // so prefer the first failure that isn't one — that is the
        // message a supervisor classifies.
        let secondary = |m: &str| {
            m.contains("poisoned")
                || m.contains("copy channel closed")
                || m.contains("likely deadlock")
        };
        if let Some((shard, msg)) = failures
            .iter()
            .find(|(_, m)| !secondary(m))
            .or(failures.first())
        {
            panic!(
                "shard {shard} panicked: {msg}{}",
                if failures.len() > 1 {
                    format!(" ({} shards failed in total)", failures.len())
                } else {
                    String::new()
                }
            );
        }
    });

    // Finalization (§3.1): flush written partitions back to the root
    // store. All instances covering an element agree at this point, so
    // the flush order is immaterial; iterate deterministically anyway.
    let mut per_shard = Vec::with_capacity(ns);
    let mut env0: Option<Vec<f64>> = None;
    let mut agg = ShardStats::default();
    let mut datas = Vec::with_capacity(ns);
    for r in results.into_iter() {
        let (env, stats, data) =
            r.expect("shard result missing despite all threads joining cleanly");
        if let Some(ref e0) = env0 {
            debug_assert_eq!(
                e0, &env,
                "scalar environments diverged across shards (replication bug)"
            );
        } else {
            env0 = Some(env);
        }
        agg.merge(&stats);
        per_shard.push(stats);
        datas.push(data);
    }
    finalize_into_store(spmd, store, &datas);

    // Every shard handle merged when its thread finished above.
    metrics::export_env();

    SpmdRunResult {
        env: env0.unwrap_or_default(),
        setup: plan.setup,
        stats: agg,
        per_shard,
    }
}

/// Finalization (§3.1): flush every written partition instance back to
/// the root store. All instances covering an element agree at this
/// point, so the flush order is immaterial; iterate deterministically
/// anyway. Shared by the SPMD and shared-log executors.
pub(crate) fn finalize_into_store(spmd: &SpmdProgram, store: &mut Store, datas: &[ShardData]) {
    for data in datas {
        for (key, inst) in data.iter_sorted() {
            if let InstKey::UsePart(u, _) = key {
                let decl = &spmd.uses[*u as usize];
                if decl.writes {
                    let region = regent_cr::analysis::base_region(&spmd.forest, decl.base);
                    let root_inst = store.instance_mut_in(&spmd.forest, region);
                    copy_fields(inst, root_inst, &decl.fields, inst.domain());
                }
            }
        }
    }
}

/// Poisons the shared synchronization primitives when a shard thread
/// unwinds, so surviving shards fail fast with a diagnostic instead of
/// waiting forever on an arrival that will never come. With a
/// [`DeathBoard`] attached, the guard also records the unwinding shard
/// as the root cause — but only when the board is still empty, so a
/// kill or hang recorded before the cascade is never displaced by a
/// secondary unwind — and forwards the root cause into the poison so
/// waiters unwind with blame.
pub(crate) struct PanicGuard<'a> {
    pub(crate) barrier: &'a ShardBarrier,
    pub(crate) collective: &'a DynamicCollective,
    /// The unwinding thread's shard id (used only for self-blame).
    pub(crate) shard: u32,
    pub(crate) board: Option<Arc<DeathBoard>>,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            match &self.board {
                Some(board) => {
                    if board.is_empty() {
                        board.record(PeerDeath {
                            shard: self.shard,
                            cause: DeathCause::Panicked,
                        });
                    }
                    match board.first() {
                        Some(cause) => {
                            self.barrier.poison_with(cause);
                            self.collective.poison_with(cause);
                        }
                        None => {
                            self.barrier.poison();
                            self.collective.poison();
                        }
                    }
                }
                None => {
                    self.barrier.poison();
                    self.collective.poison();
                }
            }
        }
    }
}

/// Renders a panic payload (`&str` or `String`) for the aggregated
/// shard-failure diagnostic.
pub(crate) fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| e.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Per-shard checkpoint–restart and integrity state for a resilient
/// run.
pub(crate) struct Resilience {
    /// Crash schedule as (epoch, shard), sorted; `cursor` advances once
    /// per event so each injected crash fires exactly once.
    schedule: Vec<(u64, u32)>,
    cursor: usize,
    /// Kill schedule as (epoch, shard), sorted: unlike a crash (which
    /// the run survives via coordinated rollback), a kill takes the
    /// victim's *thread* down — only the failover driver can recover,
    /// by shrinking the membership and re-running the survivors.
    kills: Vec<(u64, u32)>,
    kill_cursor: usize,
    /// Stall schedule as (epoch, shard, ms), sorted: the victim sleeps
    /// past the hang timeout but never panics on its own — its
    /// consumers detect the hang and blame it on the death board.
    stalls: Vec<(u64, u32, u64)>,
    stall_cursor: usize,
    /// Shared death board for failover-aware runs.
    board: Option<Arc<DeathBoard>>,
    interval: u64,
    snapshot: Option<Snapshot>,
    /// The fault plan; its corruption predicates are consulted per
    /// exchange payload, per collective frame, and per epoch.
    plan: FaultPlan,
    /// Whether seals, framing, and verification sweeps are active.
    integrity: bool,
    /// Retransmission budget per logical payload
    /// ([`RetryPolicy::max_attempts`]).
    retry_max: u32,
    /// Epochs below this already had their scheduled resident
    /// corruption handled — keeps the event from re-firing during the
    /// very replay it triggered.
    corrupt_handled: u64,
    /// Memo-template cache to invalidate on corruption escalation.
    memo: Option<Arc<Mutex<MemoCache>>>,
    /// Cooperative cancellation token, checked at every boundary.
    cancel: Option<CancelToken>,
    /// Cross-attempt checkpoint slot boundary snapshots are offered
    /// into.
    rescue: Option<Arc<RescueSlot>>,
    /// Committed checkpoint this run fast-forwards to at the first
    /// boundary of its matching outermost loop; taken from the rescue
    /// slot on the driver thread before the shards spawn, so every
    /// shard resumes (or doesn't) identically.
    pub(crate) resume: Option<Arc<ResumeState>>,
}

impl Resilience {
    pub(crate) fn new(opts: &ResilienceOptions) -> Resilience {
        Resilience {
            schedule: opts
                .plan
                .crash_schedule()
                .into_iter()
                .map(|(shard, epoch)| (epoch, shard))
                .collect(),
            cursor: 0,
            kills: opts
                .plan
                .kill_schedule()
                .into_iter()
                .map(|(shard, epoch)| (epoch, shard))
                .collect(),
            kill_cursor: 0,
            stalls: opts
                .plan
                .stall_schedule()
                .into_iter()
                .map(|(shard, epoch, ms)| (epoch, shard, ms))
                .collect(),
            stall_cursor: 0,
            board: opts.board.clone(),
            interval: opts.checkpoint_interval,
            snapshot: None,
            plan: opts.plan.clone(),
            integrity: opts.integrity || opts.plan.corrupt_rate > 0.0,
            retry_max: RetryPolicy::default().max_attempts,
            corrupt_handled: 0,
            memo: opts.memo.clone(),
            cancel: opts.cancel.clone(),
            rescue: opts.rescue.clone(),
            resume: None,
        }
    }
}

/// An epoch-boundary snapshot: everything a shard must restore to
/// deterministically replay from that boundary. Trace identities and
/// statistics are deliberately excluded (see the module docs).
///
/// `token` is the executor's resume position — the outermost-loop
/// iteration for the SPMD executor, the log batch index for the
/// shared-log executor.
struct Snapshot {
    token: u64,
    epoch: u64,
    insts: HashMap<InstKey, Instance>,
    env: Vec<f64>,
}

/// One shard's boundary offer into a [`RescueSlot`]: its snapshot plus
/// the coordinates every shard must agree on before the set commits.
struct PendingPart {
    epoch: u64,
    token: u64,
    loop_seq: u64,
    env: Vec<f64>,
    insts: HashMap<InstKey, Instance>,
}

/// A complete, consistent cross-attempt checkpoint: every shard's
/// instances plus the replicated scalar environment and resume
/// position, all captured at the same epoch boundary.
pub(crate) struct ResumeState {
    pub(crate) epoch: u64,
    pub(crate) token: u64,
    /// Which outermost loop (1-based entry order) the resume token
    /// indexes into — a token is an iteration number and means nothing
    /// in a different loop.
    pub(crate) loop_seq: u64,
    pub(crate) env: Vec<f64>,
    pub(crate) parts: Vec<HashMap<InstKey, Instance>>,
}

/// A supervisor-provided slot that carries checkpoint state *across
/// executor invocations*: each shard offers its epoch-boundary
/// snapshot into the slot, and once every shard has offered the same
/// `(epoch, token)` the set commits atomically. A later run handed the
/// same slot (a retry after a transient failure) fast-forwards every
/// shard to the committed checkpoint instead of recomputing from
/// scratch — in-run rollback handles faults the run survives, the
/// rescue slot handles faults it does not.
///
/// Torn offers (shards at different epochs when the run died) simply
/// never commit; the retry then starts from scratch, which is always
/// correct because execution is deterministic.
pub struct RescueSlot {
    inner: Mutex<RescueInner>,
}

struct RescueInner {
    pending: Vec<Option<PendingPart>>,
    committed: Option<Arc<ResumeState>>,
}

impl std::fmt::Debug for RescueSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().expect("rescue slot poisoned");
        f.debug_struct("RescueSlot")
            .field("shards", &g.pending.len())
            .field("committed_epoch", &g.committed.as_ref().map(|c| c.epoch))
            .finish()
    }
}

impl RescueSlot {
    /// An empty slot for a job running on `num_shards` shards.
    pub fn new(num_shards: usize) -> RescueSlot {
        RescueSlot {
            inner: Mutex::new(RescueInner {
                pending: (0..num_shards).map(|_| None).collect(),
                committed: None,
            }),
        }
    }

    /// A slot for `num_shards` shards pre-seeded with a committed
    /// checkpoint — used by the failover driver after remapping a dead
    /// shard's state onto the survivors: the next attempt resumes from
    /// the remapped checkpoint as if it had been committed natively.
    pub(crate) fn with_committed(num_shards: usize, committed: Arc<ResumeState>) -> RescueSlot {
        assert_eq!(
            committed.parts.len(),
            num_shards,
            "pre-seeded checkpoint must match the slot's membership"
        );
        RescueSlot {
            inner: Mutex::new(RescueInner {
                pending: (0..num_shards).map(|_| None).collect(),
                committed: Some(committed),
            }),
        }
    }

    /// Epoch of the committed checkpoint, if any — what a retry will
    /// resume from.
    pub fn checkpoint_epoch(&self) -> Option<u64> {
        self.inner
            .lock()
            .expect("rescue slot poisoned")
            .committed
            .as_ref()
            .map(|c| c.epoch)
    }

    /// The committed checkpoint for a fresh attempt to resume from
    /// (leaves it in place — a later attempt may need it again).
    pub(crate) fn resume_state(&self) -> Option<Arc<ResumeState>> {
        self.inner
            .lock()
            .expect("rescue slot poisoned")
            .committed
            .clone()
    }

    /// One shard's boundary snapshot offer; commits the set when every
    /// shard has offered the same `(epoch, token)`. Mixing offers from
    /// different attempts is benign: state at a given epoch is
    /// bit-identical across attempts by determinism.
    fn offer(
        &self,
        shard: usize,
        epoch: u64,
        token: u64,
        loop_seq: u64,
        env: &[f64],
        insts: &HashMap<InstKey, Instance>,
    ) {
        let mut g = self.inner.lock().expect("rescue slot poisoned");
        assert!(shard < g.pending.len(), "rescue offer from unknown shard");
        g.pending[shard] = Some(PendingPart {
            epoch,
            token,
            loop_seq,
            env: env.to_vec(),
            insts: insts.clone(),
        });
        let complete = g.pending.iter().all(|p| {
            p.as_ref()
                .is_some_and(|q| q.epoch == epoch && q.token == token && q.loop_seq == loop_seq)
        });
        if complete {
            let taken: Vec<PendingPart> = g
                .pending
                .iter_mut()
                .map(|p| p.take().expect("completeness checked above"))
                .collect();
            // The scalar environment is replicated; commit shard 0's.
            let env = taken[0].env.clone();
            let parts: Vec<HashMap<InstKey, Instance>> =
                taken.into_iter().map(|q| q.insts).collect();
            g.committed = Some(Arc::new(ResumeState {
                epoch,
                token,
                loop_seq,
                env,
                parts,
            }));
        }
    }
}

/// Stable identity hash of a shard-local physical instance (the `inst`
/// field of trace events).
pub(crate) fn inst_hash(key: &InstKey) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Shard-local storage.
pub(crate) struct ShardData {
    pub(crate) insts: HashMap<InstKey, Instance>,
}

impl ShardData {
    pub(crate) fn iter_sorted(&self) -> impl Iterator<Item = (&InstKey, &Instance)> {
        let mut keys: Vec<&InstKey> = self.insts.keys().collect();
        keys.sort();
        keys.into_iter().map(move |k| (k, &self.insts[k]))
    }
}

/// Allocates and initializes a shard's instances: one per owned
/// partition color per use, one replica per whole-region use, and the
/// reduction temporaries (§3.1 initialization + §4.3 temps).
pub(crate) fn allocate_shard_data(spmd: &SpmdProgram, shard: usize, store: &Store) -> ShardData {
    let mut insts = HashMap::new();
    for (u, decl) in spmd.uses.iter().enumerate() {
        if !decl.needs_instances() {
            continue;
        }
        let region = regent_cr::analysis::base_region(&spmd.forest, decl.base);
        let fields_space = spmd.forest.fields(region);
        let root_inst = store.instance_in(&spmd.forest, region);
        match decl.base {
            UseBase::Part(p) => {
                for &c in spmd.owned_colors(decl.domain, shard) {
                    let sub = spmd.forest.subregion(p, c);
                    let dom = spmd.forest.domain(sub).clone();
                    let mut inst = Instance::new(dom.clone(), fields_space);
                    copy_fields(root_inst, &mut inst, &decl.fields, &dom);
                    insts.insert(InstKey::UsePart(u as u32, c), inst);
                }
            }
            UseBase::Whole(r) => {
                let dom = spmd.forest.domain(r).clone();
                let mut inst = Instance::new(dom.clone(), fields_space);
                copy_fields(root_inst, &mut inst, &decl.fields, &dom);
                insts.insert(InstKey::UseWhole(u as u32, shard as u32), inst);
            }
        }
    }
    for (t, decl) in spmd.temps.iter().enumerate() {
        let region = regent_cr::analysis::base_region(&spmd.forest, decl.base);
        let fields_space = spmd.forest.fields(region);
        match decl.base {
            UseBase::Part(p) => {
                for &c in spmd.owned_colors(decl.domain, shard) {
                    let sub = spmd.forest.subregion(p, c);
                    let dom = spmd.forest.domain(sub).clone();
                    let inst = Instance::new_reduction(dom, fields_space, decl.op);
                    insts.insert(InstKey::TempPart(t as u32, c), inst);
                }
            }
            UseBase::Whole(r) => {
                let dom = spmd.forest.domain(r).clone();
                let inst = Instance::new_reduction(dom, fields_space, decl.op);
                insts.insert(InstKey::TempWhole(t as u32, shard as u32), inst);
            }
        }
    }
    ShardData { insts }
}

/// The per-shard execution engine: shard-local storage, the exchange
/// channels, trace/metrics recorders, and the resilience state. The
/// SPMD executor drives it through [`ShardExec::run_stmts`] (every
/// shard re-executes the whole control program); the shared-log
/// executor (`log_exec`) drives the *same* engine one leaf statement
/// at a time through [`ShardExec::run_stmt`], so exchanges,
/// collectives, integrity, and rollback behave identically under both
/// strategies.
pub(crate) struct ShardExec<'a> {
    pub(crate) spmd: &'a SpmdProgram,
    pub(crate) plan: &'a ExchangePlan,
    pub(crate) shard: usize,
    pub(crate) data: ShardData,
    pub(crate) env: Vec<f64>,
    pub(crate) tx: Vec<CopyTx<CopyMsg>>,
    pub(crate) rx: Vec<CopyRx<CopyMsg>>,
    pub(crate) collective: &'a DynamicCollective,
    pub(crate) barrier: &'a ShardBarrier,
    pub(crate) stats: ShardStats,
    /// Payloads for self-pairs (producer == consumer == this shard),
    /// keyed by (copy id, pair seq). Self-pairs never leave the
    /// shard's memory, so they are exempt from in-flight corruption.
    pub(crate) local_queue: HashMap<(u32, u32), CopyMsg>,
    /// Memoized element→storage-offset lists per (intersection, pair,
    /// side): copies run every iteration, the offsets never change.
    pub(crate) offset_cache: HashMap<(u32, u32, bool), std::sync::Arc<Vec<usize>>>,
    /// Event recorder for this shard's track.
    pub(crate) tb: TraceBuf,
    /// Always-on metrics recorder for this shard (merged into the
    /// global registry when the shard thread finishes).
    pub(crate) mx: MetricsHandle,
    /// Dynamic launch sequence number. Control flow is replicated, so
    /// every shard assigns the same number to the same logical launch —
    /// the cross-shard trace identity (§3.5).
    pub(crate) launch_seq: u32,
    /// Current loop nesting depth (0 ⇒ outermost, a timestep loop).
    pub(crate) loop_depth: u32,
    /// Dynamic occurrence counters per (copy id, pair index), matching
    /// producer and consumer counts by replicated control flow.
    pub(crate) copy_occurrence: HashMap<(u32, u32), u32>,
    /// Dynamic collective sequence number — the replicated identity
    /// that keys per-contribution corruption decisions. Like the trace
    /// identities, deliberately not rolled back on restore.
    pub(crate) collective_seq: u32,
    /// Global epoch counter: increments once per outermost-loop
    /// iteration, across all outermost loops of the program.
    pub(crate) epoch: u64,
    /// Epochs below this are replays of already-counted work: the
    /// useful-work statistics are suppressed for them, so a recovered
    /// run reports the *same* stats as a fault-free run (the replayed
    /// volume is visible through `epochs_replayed` instead).
    pub(crate) replay_until: u64,
    /// Checkpoint–restart state; `None` for plain (non-resilient) runs.
    pub(crate) resilience: Option<Resilience>,
    /// 1-based count of outermost (`loop_depth == 0`) loops entered —
    /// the namespace a rescue resume token's iteration number lives in.
    pub(crate) outer_loop_seq: u64,
    /// Freelist of exchange payload buffers: consumers feed drained
    /// message buffers back, producers draw from it instead of
    /// allocating (halo traffic is symmetric, so the two balance).
    pub(crate) pool: ChunkPool,
}

impl<'a> ShardExec<'a> {
    pub(crate) fn run_stmts(&mut self, stmts: &[SpmdStmt]) {
        for s in stmts {
            self.run_stmt(s);
        }
    }

    /// Executes one statement. Control-flow statements recurse through
    /// [`ShardExec::run_stmts`]; the shared-log executor dispatches
    /// only leaf statements here (its sequencer unrolls control flow
    /// into the log).
    pub(crate) fn run_stmt(&mut self, s: &SpmdStmt) {
        match s {
            SpmdStmt::Launch(l) => self.run_launch(l),
            SpmdStmt::Copy(c) => self.run_copy(c),
            SpmdStmt::ResetTemp(t) => self.reset_temp(*t),
            SpmdStmt::AllReduce { var, op } => {
                let local = self.env[var.0 as usize];
                let t0 = self.tb.now();
                let m0 = self.mx.start();
                let coll_seq = self.collective_seq;
                self.collective_seq += 1;
                let (folded, generation) = if self.integrity_on() {
                    self.framed_reduce(var.0, coll_seq, local, *op)
                } else {
                    self.collective.reduce_counted(self.shard, local, *op)
                };
                self.env[var.0 as usize] = folded;
                self.mx.incr(Counter::CollectiveWaits);
                self.mx.record_since(m0, Timer::CollectiveWaitNs);
                if self.useful_work() {
                    self.stats.collectives += 1;
                }
                if self.tb.is_enabled() {
                    // Arrival is stamped at the pre-wait time: the
                    // contribution was available from t0 on.
                    self.tb
                        .push(t0, 0, EventKind::CollectiveArrive { generation });
                    self.tb.instant(EventKind::CollectiveLeave { generation });
                }
            }
            SpmdStmt::SetScalar { var, expr } => {
                self.env[var.0 as usize] = expr.eval(&self.env);
            }
            SpmdStmt::For { count, body } => {
                let n = count.eval(&self.env).max(0.0) as u64;
                if self.loop_depth == 0 {
                    self.outer_loop_seq += 1;
                }
                let mut it = 0u64;
                while it < n {
                    if self.loop_depth == 0 {
                        if let Some(restored_it) = self.epoch_boundary(it) {
                            it = restored_it;
                            continue;
                        }
                        self.tb.instant(EventKind::StepBegin { step: it });
                    }
                    self.loop_depth += 1;
                    self.run_stmts(body);
                    self.loop_depth -= 1;
                    if self.loop_depth == 0 {
                        self.epoch += 1;
                    }
                    it += 1;
                }
            }
            SpmdStmt::While { cond, body } => {
                if self.loop_depth == 0 {
                    self.outer_loop_seq += 1;
                }
                let mut it = 0u64;
                while cond.eval(&self.env) != 0.0 {
                    if self.loop_depth == 0 {
                        if let Some(restored_it) = self.epoch_boundary(it) {
                            it = restored_it;
                            continue;
                        }
                        self.tb.instant(EventKind::StepBegin { step: it });
                    }
                    self.loop_depth += 1;
                    self.run_stmts(body);
                    self.loop_depth -= 1;
                    if self.loop_depth == 0 {
                        self.epoch += 1;
                    }
                    it += 1;
                }
            }
            SpmdStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if cond.eval(&self.env) != 0.0 {
                    self.run_stmts(then_body);
                } else {
                    self.run_stmts(else_body);
                }
            }
            SpmdStmt::Barrier => {
                let t0 = self.tb.now();
                let m0 = self.mx.start();
                let generation = self.barrier.wait_counted();
                self.mx.incr(Counter::BarrierWaits);
                self.mx.record_since(m0, Timer::BarrierWaitNs);
                if self.tb.is_enabled() {
                    self.tb.push(t0, 0, EventKind::BarrierArrive { generation });
                    self.tb.instant(EventKind::BarrierLeave { generation });
                }
            }
        }
    }

    fn reset_temp(&mut self, t: TempId) {
        let decl = &self.spmd.temps[t.0 as usize];
        let keys: Vec<InstKey> = match decl.base {
            UseBase::Part(_) => self
                .spmd
                .owned_colors(decl.domain, self.shard)
                .iter()
                .map(|&c| InstKey::TempPart(t.0, c))
                .collect(),
            UseBase::Whole(_) => vec![InstKey::TempWhole(t.0, self.shard as u32)],
        };
        let integrity = self.integrity_on();
        for k in keys {
            let inst = self.data.insts.get_mut(&k).unwrap_or_else(|| {
                panic!(
                    "shard {}: reduction temporary {k:?} missing (allocation out of sync)",
                    self.shard
                )
            });
            for &f in &decl.fields {
                inst.fill_field(f, decl.op);
            }
            if integrity {
                let m0 = self.mx.start_cpu();
                inst.seal_fields(&decl.fields);
                self.mx.record_cpu_since(m0, Timer::IntegrityNs);
            }
        }
    }

    /// Whether the integrity layer (sealing, framing, verification) is
    /// active for this run.
    pub(crate) fn integrity_on(&self) -> bool {
        self.resilience.as_ref().is_some_and(|r| r.integrity)
    }

    /// Collective participation under the integrity protocol: this
    /// shard's contribution travels as a checksummed [`FramedScalar`];
    /// the fault plan may corrupt individual frames, which the
    /// collective detects *before* acceptance into the fold and asks
    /// to be re-produced, up to the retry budget.
    fn framed_reduce(
        &mut self,
        var: u32,
        coll_seq: u32,
        local: f64,
        op: ReductionOp,
    ) -> (f64, u64) {
        let r = self
            .resilience
            .as_ref()
            .expect("integrity layer active without resilience state");
        let key = message_key(
            COLLECTIVE_TAG,
            var as u64,
            coll_seq as u64,
            self.shard as u64,
        );
        let plan = &r.plan;
        let mut injected = 0u32;
        let (folded, generation, bad) =
            self.collective
                .reduce_framed(self.shard, op, r.retry_max, |attempt| {
                    let mut frame = FramedScalar::new(local);
                    if let Some(entropy) = plan.payload_corruption(key, attempt) {
                        frame.bits ^= 1u64 << ((entropy >> 40) % 64);
                        injected += 1;
                    }
                    frame
                });
        self.stats.corruptions_injected += u64::from(injected);
        self.stats.corruptions_detected += u64::from(bad);
        for _ in 0..bad {
            self.tb.instant(EventKind::CorruptDetected {
                site: CorruptSite::Collective,
                id: var,
                sub: coll_seq,
                epoch: self.epoch,
            });
        }
        if bad > 0 {
            self.stats.corruptions_repaired += 1;
            self.tb.instant(EventKind::CorruptRepaired {
                site: CorruptSite::Collective,
                id: var,
                sub: coll_seq,
                attempts: bad,
            });
        }
        (folded, generation)
    }

    fn run_launch(&mut self, l: &SpmdLaunch) {
        let decl = self.spmd.task(l.task);
        let launch = self.launch_seq;
        self.launch_seq += 1;
        let scalar_args: Vec<f64> = l.scalar_args.iter().map(|e| e.eval(&self.env)).collect();
        let owned: Vec<DynPoint> = self.spmd.owned_colors(l.domain, self.shard).to_vec();
        // This shard's points start at the block offset within the
        // launch domain — the cross-shard `pos` identity.
        let domain_len = self.spmd.launch_domains[l.domain.0 as usize].len();
        let (block_start, _) = block_range(domain_len, self.spmd.num_shards, self.shard);
        let integrity = self.integrity_on();
        // Instances held with a mutating privilege: the written fields
        // are re-sealed once the launch completes (task completion
        // makes their contents the new checksummed truth). Only the
        // declared fields are rehashed — untouched columns keep their
        // still-valid seals.
        let mut reseal: Vec<(InstKey, Vec<FieldId>)> = Vec::new();
        let mut reduced: Option<f64> = None;
        for (local_idx, c) in owned.into_iter().enumerate() {
            let pos = (block_start + local_idx) as u32;
            // Resolve argument instances and domains.
            let mut slots: Vec<ArgSlot> = Vec::with_capacity(l.args.len());
            for (idx, a) in l.args.iter().enumerate() {
                let param = &decl.params[idx];
                let (key, domain, region) = self.arg_key_domain(a, c);
                if integrity && !matches!(param.privilege, Privilege::Read) {
                    match reseal.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, fs)) => {
                            for f in &param.fields {
                                if !fs.contains(f) {
                                    fs.push(*f);
                                }
                            }
                        }
                        None => reseal.push((key, param.fields.clone())),
                    }
                }
                let inst: *mut Instance = self
                    .data
                    .insts
                    .get_mut(&key)
                    .unwrap_or_else(|| panic!("shard {} missing instance {key:?}", self.shard));
                if self.tb.is_enabled() {
                    self.tb.instant(EventKind::TaskAccess {
                        launch,
                        pos,
                        region: region.0,
                        inst: inst_hash(&key),
                        fields: fields_mask(param.fields.iter().map(|f| f.0)),
                        privilege: crate::implicit::priv_code(param.privilege),
                    });
                }
                // SAFETY: shard-local instances; one kernel runs at a
                // time on this thread; aliasing between slots is
                // mediated by TaskCtx (never two live references).
                slots.push(unsafe {
                    ArgSlot::new(domain, param.privilege, param.fields.clone(), inst)
                });
            }
            self.tb.instant(EventKind::TaskLaunch {
                launch,
                pos,
                task: l.task.0,
            });
            self.mx.incr(Counter::Launches);
            let mut ctx = TaskCtx::new(&mut slots, &scalar_args, c);
            let t0 = self.tb.now();
            let m0 = self.mx.start();
            (decl.kernel)(&mut ctx);
            self.mx.incr(Counter::TaskRuns);
            self.mx.record_since(m0, Timer::TaskRunNs);
            self.tb.span_since(
                t0,
                EventKind::TaskRun {
                    launch,
                    pos,
                    task: l.task.0,
                },
            );
            if self.useful_work() {
                self.stats.tasks_executed += 1;
            }
            if let Some((_, op)) = l.reduce_result {
                let v = ctx
                    .return_value
                    .unwrap_or_else(|| panic!("task {} returned no value", decl.name));
                reduced = Some(match reduced {
                    None => v,
                    Some(acc) => op.fold(acc, v),
                });
            }
        }
        if !reseal.is_empty() {
            let m0 = self.mx.start_cpu();
            for (key, fields) in reseal {
                self.data
                    .insts
                    .get_mut(&key)
                    .expect("resealing an instance the launch just accessed")
                    .seal_fields(&fields);
            }
            self.mx.record_cpu_since(m0, Timer::IntegrityNs);
        }
        if let Some((var, op)) = l.reduce_result {
            // Local partial; the AllReduce emitted right after this
            // launch folds across shards. Shards owning no points
            // contribute the identity.
            self.env[var.0 as usize] = reduced.unwrap_or_else(|| op.identity());
        }
    }

    fn arg_key_domain(&self, a: &SpmdArg, c: DynPoint) -> (InstKey, Domain, RegionId) {
        match a {
            SpmdArg::Use(u) => {
                let decl = &self.spmd.uses[*u];
                match decl.base {
                    UseBase::Part(p) => {
                        let sub = self.spmd.forest.subregion(p, c);
                        (
                            InstKey::UsePart(*u as u32, c),
                            self.spmd.forest.domain(sub).clone(),
                            sub,
                        )
                    }
                    UseBase::Whole(r) => (
                        InstKey::UseWhole(*u as u32, self.shard as u32),
                        self.spmd.forest.domain(r).clone(),
                        r,
                    ),
                }
            }
            SpmdArg::Temp(t) => {
                let decl = &self.spmd.temps[t.0 as usize];
                match decl.base {
                    UseBase::Part(p) => {
                        let sub = self.spmd.forest.subregion(p, c);
                        (
                            InstKey::TempPart(t.0, c),
                            self.spmd.forest.domain(sub).clone(),
                            sub,
                        )
                    }
                    UseBase::Whole(r) => (
                        InstKey::TempWhole(t.0, self.shard as u32),
                        self.spmd.forest.domain(r).clone(),
                        r,
                    ),
                }
            }
        }
    }

    /// The logical region a copy pair's destination key covers.
    fn key_region(&self, key: &InstKey) -> RegionId {
        match *key {
            InstKey::UsePart(u, c) => match self.spmd.uses[u as usize].base {
                UseBase::Part(p) => self.spmd.forest.subregion(p, c),
                UseBase::Whole(r) => r,
            },
            InstKey::UseWhole(u, _) => {
                regent_cr::analysis::base_region(&self.spmd.forest, self.spmd.uses[u as usize].base)
            }
            InstKey::TempPart(t, c) => match self.spmd.temps[t as usize].base {
                UseBase::Part(p) => self.spmd.forest.subregion(p, c),
                UseBase::Whole(r) => r,
            },
            InstKey::TempWhole(t, _) => regent_cr::analysis::base_region(
                &self.spmd.forest,
                self.spmd.temps[t as usize].base,
            ),
        }
    }

    fn run_copy(&mut self, c: &CopyStmt) {
        if self.useful_work() {
            self.stats.copies_executed += 1;
        }
        let pairs: &[PairPlan] = &self.plan.pairs[c.intersection.0 as usize];
        let traced = self.tb.is_enabled();
        let integrity = self.integrity_on();
        let copy_fields_mask = if traced {
            fields_mask(c.fields.iter().map(|f| f.0))
        } else {
            0
        };
        // Producer phase (§3.4: copies are issued by the producer).
        for (seq, p) in pairs.iter().enumerate() {
            if p.src_owner != self.shard {
                continue;
            }
            let t0 = self.tb.now();
            let m0 = self.mx.start();
            let offs = offsets_for(
                &mut self.offset_cache,
                &self.data,
                c.intersection.0,
                seq as u32,
                true,
                &p.src_key,
                &p.elements,
            );
            let chunks = extract(
                &mut self.pool,
                &self.data.insts[&p.src_key],
                &c.fields,
                &offs,
            );
            // The occurrence number is part of the corruption key, so
            // it must advance whenever the integrity layer is on, not
            // just when tracing.
            let occurrence = if traced || integrity {
                self.occurrence(c.id.0, seq as u32, true)
            } else {
                0
            };
            if traced {
                self.tb.span_since(
                    t0,
                    EventKind::CopyIssue {
                        copy: c.id.0,
                        pair: seq as u32,
                        seq: occurrence,
                        elements: p.elements.volume(),
                        dst_shard: p.dst_owner as u32,
                    },
                );
            }
            if p.dst_owner == self.shard {
                self.local_queue.insert(
                    (c.id.0, seq as u32),
                    CopyMsg {
                        copy: c.id,
                        pair_seq: seq as u32,
                        attempt: 0,
                        checksum: 0,
                        chunks,
                    },
                );
            } else {
                // Work counters count logical messages, not integrity
                // retransmissions (those are visible through the
                // corruption counters instead).
                if self.useful_work() {
                    self.stats.messages_sent += 1;
                    self.stats.elements_sent += p.elements.volume();
                }
                if integrity {
                    self.send_framed(c.id, seq as u32, occurrence, p.dst_owner, chunks);
                } else {
                    let stalled = push_frame(
                        &mut self.tx[p.dst_owner],
                        CopyMsg {
                            copy: c.id,
                            pair_seq: seq as u32,
                            attempt: 0,
                            checksum: 0,
                            chunks,
                        },
                        self.shard,
                        p.dst_owner,
                        c.id.0,
                        seq as u32,
                    );
                    if stalled {
                        self.mx.incr(Counter::RingStalls);
                    }
                }
            }
            self.mx.incr(Counter::CopiesIssued);
            self.mx.record_since(m0, Timer::CopyIssueNs);
        }
        // Publish every batched frame before blocking in the consumer
        // phase: a peer must never wait on a written-but-unpublished
        // slot (this is the data plane's deadlock-freedom invariant).
        for tx in &mut self.tx {
            tx.flush();
        }
        // Consumer phase: apply in the global deterministic order (the
        // receive is the point-to-point synchronization).
        for (seq, p) in pairs.iter().enumerate() {
            if p.dst_owner != self.shard {
                continue;
            }
            let t0 = self.tb.now();
            let m0 = self.mx.start();
            let chunks = if p.src_owner == self.shard {
                self.local_queue
                    .remove(&(c.id.0, seq as u32))
                    .unwrap_or_else(|| {
                        panic!(
                            "shard {}: missing local payload for copy {} pair {} \
                             (copy protocol desynchronized)",
                            self.shard, c.id.0, seq
                        )
                    })
                    .chunks
            } else {
                // Under the integrity protocol a logical payload may
                // arrive as several frames: the producer's corruption
                // predicate is pure and shared, so it proactively
                // retransmits after every frame it knows arrives
                // corrupted — keep receiving until one verifies.
                let mut bad_attempts = 0u32;
                let msg = loop {
                    let msg = match self.rx[p.src_owner].recv_timeout(hang_timeout()) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => {
                            // The producer stopped making progress:
                            // blame *it* (not us) on the death board so
                            // the failover driver evicts the hung
                            // shard, not the waiter that noticed.
                            if let Some(board) =
                                self.resilience.as_ref().and_then(|r| r.board.as_ref())
                            {
                                board.record(PeerDeath {
                                    shard: p.src_owner as u32,
                                    cause: DeathCause::Hung,
                                });
                            }
                            panic!(
                                "likely deadlock: shard {} waited {:?} on copy {} pair {} from shard {}",
                                self.shard,
                                hang_timeout(),
                                c.id.0,
                                seq,
                                p.src_owner
                            )
                        }
                        Err(RecvTimeoutError::Disconnected) => panic!(
                            "copy channel closed: producer shard {} died before sending copy {} pair {} to shard {}",
                            p.src_owner, c.id.0, seq, self.shard
                        ),
                    };
                    debug_assert_eq!(msg.copy, c.id, "copy protocol out of sync");
                    debug_assert_eq!(msg.pair_seq, seq as u32, "pair order out of sync");
                    let frame_ok = if integrity {
                        let m0 = self.mx.start_cpu();
                        let ok = chunks_checksum(&msg.chunks) == msg.checksum;
                        self.mx.record_cpu_since(m0, Timer::IntegrityNs);
                        ok
                    } else {
                        true
                    };
                    if frame_ok {
                        // The sender's frame numbering and our
                        // detection count advance in lockstep (shared
                        // pure predicate).
                        debug_assert!(
                            !integrity || msg.attempt == bad_attempts,
                            "retransmission numbering out of sync"
                        );
                        break msg;
                    }
                    // Checksum mismatch: the frame was corrupted in
                    // flight. Count the detection and wait for the
                    // retransmission.
                    bad_attempts += 1;
                    self.stats.corruptions_detected += 1;
                    self.tb.instant(EventKind::CorruptDetected {
                        site: CorruptSite::Exchange,
                        id: c.id.0,
                        sub: seq as u32,
                        epoch: self.epoch,
                    });
                    recycle_chunks(&mut self.pool, msg.chunks);
                };
                if bad_attempts > 0 {
                    self.stats.corruptions_repaired += 1;
                    self.mx.add(Counter::Retransmits, u64::from(bad_attempts));
                    self.tb.instant(EventKind::CorruptRepaired {
                        site: CorruptSite::Exchange,
                        id: c.id.0,
                        sub: seq as u32,
                        attempts: bad_attempts,
                    });
                }
                msg.chunks
            };
            let offs = offsets_for(
                &mut self.offset_cache,
                &self.data,
                c.intersection.0,
                seq as u32,
                false,
                &p.dst_key,
                &p.elements,
            );
            let dst = self.data.insts.get_mut(&p.dst_key).unwrap_or_else(|| {
                panic!(
                    "shard {}: destination instance {:?} for copy {} pair {} missing \
                     (exchange plan inconsistent with allocation)",
                    self.shard, p.dst_key, c.id.0, seq
                )
            });
            apply(dst, &c.fields, &offs, &chunks, c.reduction);
            if integrity {
                // The applied data is verified; the written columns
                // become authoritative again.
                let m0 = self.mx.start_cpu();
                dst.seal_fields(&c.fields);
                self.mx.record_cpu_since(m0, Timer::IntegrityNs);
            }
            // The drained payload feeds the freelist the producer side
            // draws from — steady state allocates nothing.
            recycle_chunks(&mut self.pool, chunks);
            self.mx.incr(Counter::CopiesApplied);
            self.mx.record_since(m0, Timer::CopyWaitNs);
            if traced {
                let occurrence = self.occurrence(c.id.0, seq as u32, false);
                // The span covers the blocking receive, so copy stalls
                // are visible in profiles.
                self.tb.span_since(
                    t0,
                    EventKind::CopyApply {
                        copy: c.id.0,
                        pair: seq as u32,
                        seq: occurrence,
                        region: self.key_region(&p.dst_key).0,
                        inst: inst_hash(&p.dst_key),
                        fields: copy_fields_mask,
                        reduce: c.reduction.is_some(),
                    },
                );
            }
        }
    }

    /// Sends one logical exchange payload under the integrity
    /// protocol: checksum-framed, with every corrupted transmission
    /// the fault plan schedules sent ahead of the clean one
    /// (sender-proactive retransmission — the corruption predicate is
    /// pure and shared, so no acknowledgement channel exists; the
    /// consumer receives until a frame verifies).
    fn send_framed(
        &mut self,
        copy: CopyId,
        seq: u32,
        occurrence: u32,
        dst: usize,
        chunks: Vec<Chunk>,
    ) {
        let m0 = self.mx.start_cpu();
        let checksum = chunks_checksum(&chunks);
        self.mx.record_cpu_since(m0, Timer::IntegrityNs);
        let r = self
            .resilience
            .as_ref()
            .expect("integrity layer active without resilience state");
        let key = message_key(EXCHANGE_TAG, copy.0 as u64, seq as u64, occurrence as u64);
        let max_attempts = r.retry_max;
        let plan = &r.plan;
        let mut injected = 0u64;
        let mut attempt = 0u32;
        loop {
            let bad = plan.payload_corruption(key, attempt).and_then(|entropy| {
                let mut bad = chunks.clone();
                corrupt_chunks(&mut bad, entropy).then_some(bad)
            });
            let Some(bad) = bad else {
                let stalled = push_frame(
                    &mut self.tx[dst],
                    CopyMsg {
                        copy,
                        pair_seq: seq,
                        attempt,
                        checksum,
                        chunks,
                    },
                    self.shard,
                    dst,
                    copy.0,
                    seq,
                );
                if stalled {
                    self.mx.incr(Counter::RingStalls);
                }
                break;
            };
            assert!(
                attempt + 1 < max_attempts,
                "unrecoverable exchange corruption: shard {} would produce {} corrupted \
                 transmissions in a row for copy {} pair {} (retry budget exhausted)",
                self.shard,
                max_attempts,
                copy.0,
                seq
            );
            injected += 1;
            let stalled = push_frame(
                &mut self.tx[dst],
                CopyMsg {
                    copy,
                    pair_seq: seq,
                    attempt,
                    checksum,
                    chunks: bad,
                },
                self.shard,
                dst,
                copy.0,
                seq,
            );
            if stalled {
                self.mx.incr(Counter::RingStalls);
            }
            attempt += 1;
        }
        self.stats.corruptions_injected += injected;
    }

    /// Publishes the shard's buffer-pool counters into the metrics
    /// registry. Called once at shard shutdown — the pool is shard
    /// private, so flushing totals is cheaper than per-take increments.
    pub(crate) fn flush_pool_metrics(&mut self) {
        self.mx.add(Counter::PoolReuses, self.pool.reuses());
        self.mx.add(Counter::PoolAllocs, self.pool.allocs());
    }

    /// Whether the current epoch is first-time (useful) work rather
    /// than a post-rollback replay. Work counters only advance for
    /// useful epochs, keeping recovered and fault-free stats equal.
    pub(crate) fn useful_work(&self) -> bool {
        self.epoch >= self.replay_until
    }

    /// Epoch boundary of a resilient run, called at the top of every
    /// outermost-loop iteration. See [`ShardExec::boundary`].
    fn epoch_boundary(&mut self, it: u64) -> Option<u64> {
        self.boundary(it == 0, it)
    }

    /// Epoch boundary of a resilient run: takes a snapshot when one is
    /// due, then fires a scheduled crash by rolling back to the last
    /// snapshot. `first` marks the first boundary of an outermost loop
    /// (forces a fresh snapshot so a rollback never crosses loop
    /// boundaries); `token` is the executor's resume position stored in
    /// the snapshot — the loop iteration for the SPMD executor, the log
    /// batch index for the shared-log executor. Returns
    /// `Some(restored_token)` when a rollback happened — the caller
    /// resumes from that position; `None` otherwise (including for
    /// plain runs). Every shard makes the same decision at the same
    /// epoch (replicated control flow / a replicated log + shared
    /// plan), which is what keeps the recovery coordination-free.
    pub(crate) fn boundary(&mut self, first: bool, token: u64) -> Option<u64> {
        self.resilience.as_ref()?;
        // Cooperative cancellation: supervised jobs stop at epoch
        // boundaries (never mid-exchange), unwinding with a structured
        // diagnostic the supervisor classifies. Every shard fires at
        // the same replicated epoch for deterministic causes; the
        // wall-clock deadline may fire on one shard first, whose
        // PanicGuard then poisons the rest.
        if let Some(tok) = self.resilience.as_ref().unwrap().cancel.clone() {
            tok.check_boundary(self.shard, self.epoch);
        }
        // Cross-attempt rescue resume: at the first boundary of the
        // outermost loop the committed checkpoint belongs to, install
        // its state and fast-forward to its iteration. The decision was
        // resolved once on the driver thread, so all shards agree.
        if first
            && self
                .resilience
                .as_ref()
                .unwrap()
                .resume
                .as_ref()
                .is_some_and(|rs| rs.loop_seq == self.outer_loop_seq)
        {
            let rs = self
                .resilience
                .as_mut()
                .unwrap()
                .resume
                .take()
                .expect("checked above");
            return Some(self.install_resume(&rs));
        }
        // Integrity sweep first: inject and detect resident corruption
        // *before* the snapshot logic, so a snapshot can never capture
        // corrupted state.
        if let Some(restored) = self.integrity_boundary(first) {
            return Some(restored);
        }
        let epoch = self.epoch;
        let r = self.resilience.as_ref().unwrap();
        // Snapshot at the first epoch of each loop and every `interval`
        // epochs after — but not twice at the same epoch (a rollback
        // lands us back on a boundary whose snapshot is already live).
        let due = (first || (r.interval > 0 && epoch.is_multiple_of(r.interval)))
            && r.snapshot.as_ref().is_none_or(|s| s.epoch != epoch);
        if due {
            let t0 = self.tb.now();
            let m0 = self.mx.start();
            // Reuse the previous snapshot's allocations: the instance
            // shapes are static per shard, so in steady state a
            // checkpoint copies bits without touching the allocator.
            let snap = match self.resilience.as_mut().unwrap().snapshot.take() {
                Some(mut s) => {
                    s.token = token;
                    s.epoch = epoch;
                    clone_insts_into(&self.data.insts, &mut s.insts);
                    s.env.clone_from(&self.env);
                    s
                }
                None => Snapshot {
                    token,
                    epoch,
                    insts: self.data.insts.clone(),
                    env: self.env.clone(),
                },
            };
            self.resilience.as_mut().unwrap().snapshot = Some(snap);
            self.stats.checkpoints += 1;
            self.mx.incr(Counter::Checkpoints);
            self.mx.record_since(m0, Timer::CheckpointNs);
            self.tb.span_since(t0, EventKind::CheckpointSave { epoch });
            // Offer the snapshot into the supervisor's rescue slot so
            // a retry after an unrecoverable failure resumes here.
            if let Some(slot) = self.resilience.as_ref().unwrap().rescue.clone() {
                slot.offer(
                    self.shard,
                    epoch,
                    token,
                    self.outer_loop_seq,
                    &self.env,
                    &self.data.insts,
                );
            }
        }
        // Injected shard kill: fires *after* the snapshot/rescue offer
        // (so the kill-epoch checkpoint can commit) and *before* the
        // survivable crash schedule. Every shard advances the cursor
        // (the schedule is replicated); only the victim dies. The
        // survivors then unwind through the poison cascade, and the
        // failover driver reconstructs the victim's state at N-1.
        {
            let r = self.resilience.as_mut().unwrap();
            if let Some(&(e, victim)) = r.kills.get(r.kill_cursor) {
                if e == epoch {
                    r.kill_cursor += 1;
                    if victim as usize == self.shard {
                        let death = PeerDeath {
                            shard: victim,
                            cause: DeathCause::Killed { epoch },
                        };
                        if let Some(board) = &r.board {
                            board.record(death);
                        }
                        panic!("{SHARD_LOSS_PREFIX}: {death}");
                    }
                }
            }
        }
        // Injected shard stall: the victim sleeps past the hang timeout
        // and then continues — it never panics on its own. Its
        // consumers' bounded receives time out, blame the producer as
        // hung on the death board, and unwind; the woken victim then
        // dies on the poisoned barrier or sealed rings.
        {
            let r = self.resilience.as_mut().unwrap();
            if let Some(&(e, victim, ms)) = r.stalls.get(r.stall_cursor) {
                if e == epoch {
                    r.stall_cursor += 1;
                    if victim as usize == self.shard {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
        let r = self.resilience.as_mut().unwrap();
        let crashed_shard = match r.schedule.get(r.cursor) {
            Some(&(e, s)) if e == epoch => Some(s),
            _ => None,
        }?;
        r.cursor += 1;
        if crashed_shard as usize == self.shard {
            self.tb.instant(EventKind::ShardCrash {
                shard: crashed_shard,
                epoch,
            });
        }
        Some(self.rollback(epoch))
    }

    /// Integrity work at an epoch boundary: inject any scheduled
    /// resident corruption, sweep every instance seal, and escalate a
    /// detected resident corruption to a coordinated rollback.
    /// Localized repair is impossible for resident state — no peer
    /// holds a redundant copy — so the checkpoint *is* the redundancy.
    /// Returns `Some(restored_token)` when the boundary rolled back.
    fn integrity_boundary(&mut self, first: bool) -> Option<u64> {
        let r = self.resilience.as_ref()?;
        if !r.integrity {
            return None;
        }
        let epoch = self.epoch;
        // Resident corruption only fires past the first boundary of a
        // loop: `!first` guarantees the live snapshot belongs to the
        // current loop, so the restored resume token is valid here.
        let decision = if !first && epoch >= r.corrupt_handled {
            r.plan.resident_corruption(epoch, self.spmd.num_shards)
        } else {
            None
        };
        let Some((victim, entropy)) = decision else {
            // Steady-state sweep — the measurable cost of the
            // integrity layer at corruption rate 0. The sweep runs on
            // snapshot-due boundaries only: the property it protects
            // is that a snapshot never captures corrupted state, and
            // sweeping the epochs in between buys no additional
            // guarantee (scheduled faults verify on their own epoch in
            // the injection branch below) — it only multiplies the
            // rate-0 cost by the checkpoint interval.
            let sweep_due = first || (r.interval > 0 && epoch.is_multiple_of(r.interval));
            if sweep_due {
                let m0 = self.mx.start_cpu();
                self.verify_clean();
                self.mx.record_cpu_since(m0, Timer::IntegrityNs);
            }
            return None;
        };
        // Every shard reaches this decision independently (pure shared
        // predicate), so the rollback needs no recovery messages.
        self.resilience.as_mut().unwrap().corrupt_handled = epoch + 1;
        if victim as usize == self.shard {
            let injected = self.inject_resident(entropy);
            let detected = self.count_seal_mismatches();
            assert_eq!(
                detected,
                u64::from(injected),
                "shard {}: resident corruption escaped seal verification",
                self.shard
            );
            if injected {
                self.stats.corruptions_injected += 1;
                self.stats.corruptions_detected += 1;
                self.tb.instant(EventKind::CorruptDetected {
                    site: CorruptSite::Resident,
                    id: 0,
                    sub: 0,
                    epoch,
                });
                self.stats.corruptions_escalated += 1;
                self.tb.instant(EventKind::CorruptEscalated {
                    shard: victim,
                    epoch,
                });
            }
            // Cached epoch templates were captured from schedules the
            // rollback is about to undo.
            if let Some(memo) = self.resilience.as_ref().unwrap().memo.clone() {
                memo.lock()
                    .expect("memo cache lock poisoned")
                    .invalidate_for_repair();
            }
        } else {
            let m0 = self.mx.start_cpu();
            self.verify_clean();
            self.mx.record_cpu_since(m0, Timer::IntegrityNs);
        }
        Some(self.rollback(epoch))
    }

    /// Installs a committed rescue checkpoint at the start of a fresh
    /// attempt: region instances, scalar environment, and epoch jump
    /// to the checkpoint, the installed state becomes the live
    /// snapshot (so later in-run rollbacks restore to it), and fault
    /// events from epochs at or before the checkpoint are skipped —
    /// they already fired in the attempt that produced it. Returns the
    /// resume token the caller fast-forwards to. Work counters are
    /// *not* suppressed: this run only executes (and only counts) the
    /// epochs after the checkpoint.
    fn install_resume(&mut self, rs: &ResumeState) -> u64 {
        self.data.insts = rs.parts[self.shard].clone();
        self.env = rs.env.clone();
        self.epoch = rs.epoch;
        let r = self.resilience.as_mut().unwrap();
        r.snapshot = Some(Snapshot {
            token: rs.token,
            epoch: rs.epoch,
            insts: rs.parts[self.shard].clone(),
            env: rs.env.clone(),
        });
        while r
            .schedule
            .get(r.cursor)
            .is_some_and(|&(e, _)| e <= rs.epoch)
        {
            r.cursor += 1;
        }
        while r
            .kills
            .get(r.kill_cursor)
            .is_some_and(|&(e, _)| e <= rs.epoch)
        {
            r.kill_cursor += 1;
        }
        while r
            .stalls
            .get(r.stall_cursor)
            .is_some_and(|&(e, _, _)| e <= rs.epoch)
        {
            r.stall_cursor += 1;
        }
        r.corrupt_handled = r.corrupt_handled.max(rs.epoch + 1);
        self.tb.instant(EventKind::Mark {
            name: "rescue-resume",
        });
        rs.token
    }

    /// Coordinated rollback to the live snapshot: restores instances,
    /// scalars, and the epoch counter, suppresses useful-work stats
    /// for the replayed range, and returns the resume token the
    /// snapshot stored (loop iteration or log batch index).
    fn rollback(&mut self, epoch: u64) -> u64 {
        // Take the snapshot out so the live state can be restored in
        // place (no intermediate full clone), then put it back — it
        // stays the rollback target until the next checkpoint.
        let snap = self
            .resilience
            .as_mut()
            .unwrap()
            .snapshot
            .take()
            .expect("rollback before any snapshot (epoch 0 always checkpoints)");
        let (snap_token, snap_epoch) = (snap.token, snap.epoch);
        let t0 = self.tb.now();
        let m0 = self.mx.start();
        clone_insts_into(&snap.insts, &mut self.data.insts);
        self.env.clone_from(&snap.env);
        self.resilience.as_mut().unwrap().snapshot = Some(snap);
        self.epoch = snap_epoch;
        // Everything below the rolled-back epoch was already counted.
        self.replay_until = self.replay_until.max(epoch);
        self.stats.restores += 1;
        self.stats.epochs_replayed += epoch - snap_epoch;
        self.mx.incr(Counter::Restores);
        self.mx.record_since(m0, Timer::RestoreNs);
        self.tb.span_since(
            t0,
            EventKind::CheckpointRestore {
                epoch,
                to_epoch: snap_epoch,
            },
        );
        snap_token
    }

    /// Verifies every resident instance seal, panicking on a mismatch
    /// the fault plan did not predict — that is genuine memory
    /// corruption or a missed re-seal, and either must fail-stop.
    fn verify_clean(&self) {
        for (key, inst) in self.data.insts.iter() {
            assert!(
                inst.verify_seal(),
                "shard {}: instance {key:?} failed seal verification with no corruption \
                 scheduled (memory fault or missed re-seal)",
                self.shard
            );
        }
    }

    /// Number of resident instances whose seal no longer matches their
    /// contents.
    fn count_seal_mismatches(&self) -> u64 {
        self.data
            .insts
            .values()
            .filter(|i| !i.verify_seal())
            .count() as u64
    }

    /// Flips one bit in one entropy-selected resident instance without
    /// touching its seal — the silent corruption the verification
    /// sweep must catch. Returns `false` when the shard holds no
    /// corruptible (non-empty) instance.
    fn inject_resident(&mut self, entropy: u64) -> bool {
        let mut keys: Vec<InstKey> = self.data.insts.keys().copied().collect();
        keys.sort();
        if keys.is_empty() {
            return false;
        }
        let start = (entropy % keys.len() as u64) as usize;
        for i in 0..keys.len() {
            let key = keys[(start + i) % keys.len()];
            let inst = self
                .data
                .insts
                .get_mut(&key)
                .expect("key enumerated from the same map");
            if inst.corrupt_bit_silently(entropy) {
                return true;
            }
        }
        false
    }

    /// Next dynamic occurrence number of a (copy, pair) on one side.
    /// Producer and consumer sides count independently but identically
    /// (replicated control flow), which is what matches a `CopyIssue`
    /// to its `CopyApply` across shard logs.
    fn occurrence(&mut self, copy: u32, pair: u32, is_src: bool) -> u32 {
        let k = (copy, pair ^ (u32::from(is_src) << 31));
        let e = self.copy_occurrence.entry(k).or_insert(0);
        let v = *e;
        *e += 1;
        v
    }
}

/// Computes (and memoizes) the storage offsets of a pair's elements in
/// the given shard-local instance. Copies execute every loop
/// iteration; the offsets never change, so this is paid once.
#[allow(clippy::too_many_arguments)]
fn offsets_for(
    cache: &mut HashMap<(u32, u32, bool), std::sync::Arc<Vec<usize>>>,
    data: &ShardData,
    intersection: u32,
    seq: u32,
    is_src: bool,
    key: &InstKey,
    elements: &Domain,
) -> std::sync::Arc<Vec<usize>> {
    if let Some(v) = cache.get(&(intersection, seq, is_src)) {
        return std::sync::Arc::clone(v);
    }
    let inst = &data.insts[key];
    let ix = inst.indexer();
    let offsets: Vec<usize> = elements
        .iter()
        .map(|p| {
            ix.offset_of(p).unwrap_or_else(|| {
                panic!("pair element {p:?} outside instance {key:?} (exchange plan inconsistent)")
            }) as usize
        })
        .collect();
    let arc = std::sync::Arc::new(offsets);
    cache.insert((intersection, seq, is_src), std::sync::Arc::clone(&arc));
    arc
}

/// Extracts field payloads at precomputed offsets (canonical element
/// order of the pair's intersection). Buffers come from the shard's
/// [`ChunkPool`] so steady-state exchanges never hit the allocator.
fn extract(
    pool: &mut ChunkPool,
    inst: &Instance,
    fields: &[FieldId],
    offsets: &[usize],
) -> Vec<Chunk> {
    fields
        .iter()
        .map(|&f| {
            // Column type probed via the instance accessors.
            match column_kind(inst, f) {
                Kind::F64 => {
                    let col = inst.f64_col(f);
                    let mut v = pool.take_f64(offsets.len());
                    v.extend(offsets.iter().map(|&o| col[o]));
                    Chunk::F64(v)
                }
                Kind::I64 => {
                    let col = inst.i64_col(f);
                    let mut v = pool.take_i64(offsets.len());
                    v.extend(offsets.iter().map(|&o| col[o]));
                    Chunk::I64(v)
                }
            }
        })
        .collect()
}

/// Returns a frame's payload buffers to the pool. Consumers recycle
/// what producers drew; symmetric halo traffic keeps both sides fed.
fn recycle_chunks(pool: &mut ChunkPool, chunks: Vec<Chunk>) {
    for chunk in chunks {
        match chunk {
            Chunk::F64(v) => pool.put_f64(v),
            Chunk::I64(v) => pool.put_i64(v),
        }
    }
}

/// Pushes one exchange frame without publishing (the caller flushes
/// once per statement). Translates transport errors into the exact
/// diagnostics the resilience suite pins: a dead consumer unwinds the
/// producer, a ring that stays full past the hang timeout is reported
/// as a likely deadlock. Returns whether the push had to wait.
fn push_frame(
    tx: &mut CopyTx<CopyMsg>,
    msg: CopyMsg,
    shard: usize,
    dst: usize,
    copy: u32,
    seq: u32,
) -> bool {
    match tx.push(msg) {
        Ok(stalled) => stalled,
        Err(ring::SendError::Closed(_)) => panic!(
            "copy channel closed: consumer shard {dst} died before receiving copy {copy} pair {seq} from shard {shard}"
        ),
        Err(ring::SendError::Full(_)) => panic!(
            "likely deadlock: shard {shard} ring to shard {dst} stayed full for {:?} sending copy {copy} pair {seq}",
            crate::collective::hang_timeout()
        ),
    }
}

enum Kind {
    F64,
    I64,
}

fn column_kind(inst: &Instance, f: FieldId) -> Kind {
    match inst.column(f) {
        ColumnData::F64(_) => Kind::F64,
        ColumnData::I64(_) => Kind::I64,
    }
}

/// Applies field payloads at precomputed offsets, either overwriting
/// or folding (§4.3 reduction copies).
fn apply(
    inst: &mut Instance,
    fields: &[FieldId],
    offsets: &[usize],
    chunks: &[Chunk],
    reduction: Option<ReductionOp>,
) {
    for (&f, chunk) in fields.iter().zip(chunks) {
        match chunk {
            Chunk::F64(vals) => {
                let col = inst.f64_col_mut(f);
                match reduction {
                    None => {
                        for (&o, &v) in offsets.iter().zip(vals) {
                            col[o] = v;
                        }
                    }
                    Some(op) => {
                        for (&o, &v) in offsets.iter().zip(vals) {
                            col[o] = op.fold(col[o], v);
                        }
                    }
                }
            }
            Chunk::I64(vals) => {
                let col = inst.i64_col_mut(f);
                match reduction {
                    None => {
                        for (&o, &v) in offsets.iter().zip(vals) {
                            col[o] = v;
                        }
                    }
                    Some(op) => {
                        for (&o, &v) in offsets.iter().zip(vals) {
                            col[o] = op.fold_i64(col[o], v);
                        }
                    }
                }
            }
        }
    }
}
