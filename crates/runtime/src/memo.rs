//! Epoch-trace memoization for the implicit executor — the runtime-level
//! answer to the paper's O(N)-per-step control overhead.
//!
//! The implicit executor's control thread pays dynamic dependence
//! analysis for every point task (§1, §4.1). Control replication removes
//! that cost statically; Legion's production answer for the dynamic path
//! is *trace memoization*: capture one epoch's analysis, then replay it
//! at ~O(1) per task. This module reproduces that mechanism:
//!
//! * Every launch in an epoch (one outermost-loop iteration) is hashed
//!   into a [`launch signature`](launch_sig) over its task id, launch
//!   point, and resolved region requirements/privileges — everything
//!   the dependence analysis consumes, and nothing it does not (scalar
//!   *values* are excluded: a changing `dt` does not perturb the
//!   schedule).
//! * At the epoch boundary the signature sequence folds into an
//!   [`epoch key`](epoch_key). On first occurrence the executor runs
//!   full analysis and records the resulting intra-epoch conflict edges
//!   as an [`EpochTemplate`] in a [`MemoCache`].
//! * When the next epoch is predicted to match a cached template, the
//!   executor quiesces the worker pool (a trace fence: everything
//!   before the epoch happens-before everything in it) and *replays*
//!   the template launch by launch, validating each launch's signature
//!   against the template instead of scanning the in-flight window.
//!   Any divergence falls back transparently to full analysis for the
//!   rest of the epoch.
//! * Templates are validated against the region forest's structural
//!   [`version`](regent_region::RegionForest::version): any region or
//!   partition created since capture invalidates the whole cache (the
//!   conflict edges were derived from a region tree that no longer
//!   exists).
//!
//! The cache is shareable across executions
//! ([`MemoCache::shared`]) so steady-state programs re-entered with the
//! same region forest replay from their very first epoch.

use regent_geometry::DynPoint;
use regent_ir::Privilege;
use regent_region::RegionId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Structural signature of one point-task launch: the task, the launch
/// point, and every region requirement (region identity + privilege).
/// Two launches with equal signatures are interchangeable inputs to the
/// dependence analysis on an unchanged region forest.
pub fn launch_sig(task: u32, point: &DynPoint, accesses: &[(RegionId, Privilege)]) -> u64 {
    let mut h = mix(FNV_OFFSET, task as u64);
    h = mix(h, point.dim() as u64);
    for &c in point.coords() {
        h = mix(h, c as u64);
    }
    for &(r, p) in accesses {
        h = mix(h, r.0 as u64);
        let code = match p {
            Privilege::Read => 1u64,
            Privilege::ReadWrite => 2,
            Privilege::Reduce(op) => 3 + op as u64,
        };
        h = mix(h, code);
    }
    h
}

/// Folds an epoch's launch-signature sequence into its cache key.
pub fn epoch_key(sigs: &[u64]) -> u64 {
    let mut h = mix(FNV_OFFSET, sigs.len() as u64);
    for &s in sigs {
        h = mix(h, s);
    }
    h
}

/// One captured epoch schedule: the launch-signature sequence and, per
/// launch, the indices (within the epoch) of the earlier launches it
/// conflicts with — the complete intra-epoch slice of the dependence
/// graph. Replay re-applies exactly these edges; everything before the
/// epoch is ordered by the trace fence.
#[derive(Clone, Debug)]
pub struct EpochTemplate {
    /// The epoch key ([`epoch_key`] of `launch_sigs`).
    pub key: u64,
    /// Per-launch structural signatures, in issue order.
    pub launch_sigs: Vec<u64>,
    /// Per-launch intra-epoch predecessor indices (each `< ` its own
    /// position).
    pub edges: Vec<Vec<u32>>,
    /// Region-forest version the analysis was captured against.
    pub forest_version: u64,
    /// Pairwise dependence checks the capture paid — the cost a replay
    /// of this template avoids.
    pub capture_checks: u64,
}

impl EpochTemplate {
    /// Point tasks the template covers.
    pub fn len(&self) -> usize {
        self.launch_sigs.len()
    }

    /// True for a template over an empty epoch.
    pub fn is_empty(&self) -> bool {
        self.launch_sigs.is_empty()
    }
}

/// Cumulative memoization counters (lifetime of the cache, across every
/// execution that shared it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Epochs captured as templates.
    pub captures: u64,
    /// Epochs fully replayed from a template.
    pub hits: u64,
    /// Replay attempts that diverged and fell back to analysis.
    pub misses: u64,
    /// Cache invalidations (forest version changes).
    pub invalidations: u64,
    /// Point tasks issued without any dependence analysis.
    pub replayed_tasks: u64,
}

/// The epoch-template cache: keyed by [`epoch_key`], validated against
/// the region forest's structural version, shareable across executions
/// via [`MemoCache::shared`].
#[derive(Debug, Default)]
pub struct MemoCache {
    templates: HashMap<u64, EpochTemplate>,
    /// Forest version every cached template is valid for (`None` until
    /// the first validation).
    forest_version: Option<u64>,
    /// Key of the most recently completed epoch — the replay prediction
    /// for the next one (steady-state loops repeat their epoch).
    predicted: Option<u64>,
    /// Lifetime counters.
    pub stats: MemoStats,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoCache::default()
    }

    /// An empty cache behind the shared handle
    /// [`crate::ImplicitOptions::memo`] expects.
    pub fn shared() -> Arc<Mutex<MemoCache>> {
        Arc::new(Mutex::new(MemoCache::new()))
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no templates are cached.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Validates the cache against the current forest version: on
    /// mismatch every template is dropped (their conflict edges were
    /// derived from a region tree that no longer exists) and the number
    /// of invalidated templates is returned; `0` means the cache is
    /// still valid.
    pub fn validate_forest(&mut self, version: u64) -> usize {
        match self.forest_version {
            Some(v) if v == version => 0,
            Some(_) => {
                let dropped = self.templates.len();
                self.templates.clear();
                self.predicted = None;
                self.forest_version = Some(version);
                if dropped > 0 {
                    self.stats.invalidations += 1;
                }
                dropped
            }
            None => {
                self.forest_version = Some(version);
                0
            }
        }
    }

    /// Invalidates the cache after a corruption repair rolled region
    /// state back to an earlier epoch. Captured templates embed
    /// `capture_checks` and edge structure derived from epochs whose
    /// effects were just undone; dropping everything is a deliberate
    /// over-approximation of "templates whose captured epochs touched
    /// the repaired region" — safe (replay falls back to analysis and
    /// recaptures) and cheap at the frequency corruptions occur.
    /// Returns the number of templates dropped.
    pub fn invalidate_for_repair(&mut self) -> usize {
        let dropped = self.templates.len();
        self.templates.clear();
        self.predicted = None;
        if dropped > 0 {
            self.stats.invalidations += 1;
        }
        dropped
    }

    /// The template for `key`, if cached.
    pub fn get(&self, key: u64) -> Option<&EpochTemplate> {
        self.templates.get(&key)
    }

    /// Stores a captured template (first occurrence wins: re-inserting
    /// an existing key is a no-op so replay-miss recaptures cannot
    /// clobber a template another epoch is predicted on).
    pub fn insert(&mut self, template: EpochTemplate) -> bool {
        if self.templates.contains_key(&template.key) {
            return false;
        }
        self.templates.insert(template.key, template);
        true
    }

    /// The replay prediction: the key of the most recently completed
    /// epoch, when a template for it exists.
    pub fn predicted_template(&self) -> Option<&EpochTemplate> {
        self.predicted.and_then(|k| self.templates.get(&k))
    }

    /// Records the key of a completed epoch as the prediction for the
    /// next.
    pub fn set_predicted(&mut self, key: u64) {
        self.predicted = Some(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_region::ReductionOp;

    fn acc(r: u32, p: Privilege) -> (RegionId, Privilege) {
        (RegionId(r), p)
    }

    #[test]
    fn signatures_depend_on_every_requirement() {
        let pt = DynPoint::new(&[3]);
        let base = launch_sig(1, &pt, &[acc(4, Privilege::Read)]);
        assert_ne!(base, launch_sig(2, &pt, &[acc(4, Privilege::Read)]));
        assert_ne!(
            base,
            launch_sig(1, &DynPoint::new(&[4]), &[acc(4, Privilege::Read)])
        );
        assert_ne!(base, launch_sig(1, &pt, &[acc(5, Privilege::Read)]));
        assert_ne!(base, launch_sig(1, &pt, &[acc(4, Privilege::ReadWrite)]));
        assert_ne!(
            launch_sig(1, &pt, &[acc(4, Privilege::Reduce(ReductionOp::Add))]),
            launch_sig(1, &pt, &[acc(4, Privilege::Reduce(ReductionOp::Min))])
        );
        // Deterministic.
        assert_eq!(base, launch_sig(1, &pt, &[acc(4, Privilege::Read)]));
    }

    #[test]
    fn epoch_keys_are_order_and_length_sensitive() {
        assert_ne!(epoch_key(&[1, 2]), epoch_key(&[2, 1]));
        assert_ne!(epoch_key(&[1]), epoch_key(&[1, 1]));
        assert_ne!(epoch_key(&[]), epoch_key(&[0]));
        assert_eq!(epoch_key(&[7, 9]), epoch_key(&[7, 9]));
    }

    fn template(key: u64, version: u64) -> EpochTemplate {
        EpochTemplate {
            key,
            launch_sigs: vec![key],
            edges: vec![vec![]],
            forest_version: version,
            capture_checks: 0,
        }
    }

    #[test]
    fn cache_validates_against_forest_version() {
        let mut c = MemoCache::new();
        assert_eq!(c.validate_forest(5), 0, "first validation just records");
        assert!(c.insert(template(1, 5)));
        assert!(!c.insert(template(1, 5)), "first occurrence wins");
        c.set_predicted(1);
        assert!(c.predicted_template().is_some());
        assert_eq!(c.validate_forest(5), 0, "same version keeps templates");
        assert_eq!(c.len(), 1);
        assert_eq!(c.validate_forest(6), 1, "version change drops the cache");
        assert!(c.is_empty());
        assert!(c.predicted_template().is_none());
        assert_eq!(c.stats.invalidations, 1);
        // Invalidating an already-empty cache is not an invalidation.
        assert_eq!(c.validate_forest(7), 0);
        assert_eq!(c.stats.invalidations, 1);
    }
}
