//! # regent-runtime
//!
//! Execution engines for the control-replication stack (§4 of *Control
//! Replication*, SC'17):
//!
//! * [`implicit`] — the Legion-style implicitly parallel executor: a
//!   single control thread performing dynamic dependence analysis over
//!   a worker pool. This is the "Regent w/o CR" baseline whose control
//!   overhead grows with the machine.
//! * [`spmd_exec`] — the multithreaded SPMD executor for
//!   control-replicated programs: one thread per shard, distributed
//!   per-shard instances, consumer-applied copy messages as
//!   point-to-point synchronization (§3.4).
//! * [`plan`] — the dynamic intersection evaluation (§3.3) with the
//!   shallow/complete timings of Table 1.
//! * [`collective`] — the scalar dynamic collective (§4.4) and a
//!   reusable barrier (Fig. 4c mode).
//! * [`memo`] — epoch-trace memoization for the implicit executor:
//!   capture one epoch's dependence analysis as a template, replay it
//!   on structurally identical epochs, invalidate on region-forest
//!   changes.
//! * [`launch_log`] / [`log_exec`] — shared-log control replication: a
//!   single sequencer runs the control program once, appending leaf
//!   statements to an epoch-segmented flat-combining operation log;
//!   per-shard executors tail the log with lock-free cursors and
//!   replica leaders amortize dependence analysis to once per replica
//!   per batch.
//! * [`metrics`] — always-on per-shard counters and latency histograms
//!   (launches, copies, waits, memo hits, retransmits), aggregated at
//!   executor shutdown and exported via `REGENT_METRICS=<path>` as
//!   JSON plus Prometheus text.
//! * [`live`] / [`scrape`] — the live telemetry plane: sliding-window
//!   latency/goodput series with SLO burn-rate gauges, served mid-run
//!   from a dependency-free HTTP scrape endpoint
//!   (`REGENT_METRICS_ADDR=<host:port>`).
//! * [`mod@ring`] / [`pool`] — the lock-free data plane: bounded SPSC
//!   rings with batched publication carrying the exchange messages
//!   (one ring per ordered shard pair; `REGENT_DATA_PLANE=channel`
//!   restores the legacy mpsc mesh), pooled payload buffers, and
//!   core pinning behind `REGENT_PIN_CORES`.
//!
//! Both executors are tested to produce results bit-identical to the
//! sequential reference interpreter in `regent-ir`.
//!
//! Every executor has a `*_traced` variant accepting a
//! [`regent_trace::Tracer`]: the implicit executor records its control
//! thread (launches, dependence-analysis spans, conflict edges, drains)
//! and its workers (task runs), the SPMD executor records one track per
//! shard (runs, accesses, copy issues/applies, collective generations).
//! The plain entry points pass a disabled tracer and record nothing.

#![warn(missing_docs)]

pub mod cancel;
pub mod collective;
pub mod failover;
pub mod hybrid_exec;
pub mod implicit;
pub mod launch_log;
pub mod live;
pub mod log_exec;
pub mod mapper;
pub mod memo;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod ring;
pub mod scrape;
pub mod spmd_exec;

pub use cancel::CancelToken;
pub use collective::{hang_timeout, DynamicCollective, FramedScalar, ShardBarrier};
pub use failover::{
    execute_hybrid_failover, execute_hybrid_failover_traced, execute_log_failover,
    execute_log_failover_traced, execute_spmd_failover, execute_spmd_failover_traced,
    failover_enabled, FailoverOptions, FailoverRunResult, HybridFailoverRunResult,
    LogFailoverRunResult,
};
pub use hybrid_exec::{
    execute_hybrid, execute_hybrid_resilient, execute_hybrid_resilient_traced,
    execute_hybrid_traced, HybridRescue, HybridRunResult,
};
pub use implicit::{execute_implicit, ImplicitOptions, ImplicitStats};
pub use launch_log::{batch_limit_from_env, replicas_from_env, Batch, LaunchLog, LogCursor};
pub use live::{live, BurnRates, LivePlane, SlidingCount, SlidingHist, SloConfig};
pub use log_exec::{
    execute_log, execute_log_resilient, execute_log_resilient_traced, execute_log_traced,
    LogRunResult, LogStats,
};
pub use mapper::{DefaultMapper, Mapper, SingleWorkerMapper, TaskKindMapper};
pub use memo::{epoch_key, launch_sig, EpochTemplate, MemoCache, MemoStats};
pub use metrics::{
    export_env as export_metrics_env, prom_escape, Counter, Hist, MetricsHandle, MetricsRegistry,
    Timer,
};
pub use plan::{build_exchange_plan, ExchangePlan, InstKey, PairPlan, SetupStats};
pub use pool::ChunkPool;
pub use scrape::{fetch as fetch_metrics, start_env as start_scrape_env, ScrapeServer};

pub use ring::{
    copy_mesh, data_plane_from_env, pin_cores_enabled, pin_thread_to_core, ring, ring_cap_from_env,
    Backoff, CachePadded, CopyRx, CopyTx, DataPlane, RingReceiver, RingSender, SendError,
};

pub use regent_fault::{
    classify_failure, DeathCause, FailureClass, FaultPlan, PeerDeath, RetryBackoff, RetryPolicy,
    CANCEL_PREFIX, FAILOVER_EXHAUSTED_PREFIX, SHARD_LOSS_PREFIX, TRANSIENT_PREFIX,
};
pub use spmd_exec::{
    execute_spmd, execute_spmd_resilient, execute_spmd_resilient_traced, execute_spmd_traced,
    execute_spmd_with_env, execute_spmd_with_env_resilient_traced, execute_spmd_with_env_traced,
    DeathBoard, RescueSlot, ResilienceOptions, ShardStats, SpmdRunResult,
};
