//! Shared-log control replication: the flat-combining operation-log
//! executor.
//!
//! The SPMD executor makes every shard re-execute the whole control
//! program. Here the control program runs **once**, on a single
//! *sequencer* thread, which unrolls the replicated control flow into
//! an append-only, epoch-segmented [`LaunchLog`] of leaf-statement
//! records (launches carry their [`launch_sig`] structural signature).
//! The sequencer hands records to the log's flat combiner
//! ([`LaunchLog::combine`]) once per epoch segment; per-shard executor
//! threads tail the log with a lock-free [`LogCursor`] and drive the
//! *same* `ShardExec` engine as `spmd_exec`, one record at a time —
//! so exchanges, collectives, the integrity layer, and
//! checkpoint–rollback behave identically under both strategies, and
//! results stay bit-identical to the sequential reference.
//!
//! ## Replica topology
//!
//! Shards are grouped into *replicas* (one per simulated NUMA domain;
//! `REGENT_LOG_REPLICAS`, default 2): each replica's leader shard runs
//! dependence analysis **once per replica per batch** — pairwise
//! overlap checks between the batch's launch records at the
//! use/partition granularity, deduplicated by signature pair — instead
//! of per shard (SPMD) or per point task (implicit). That is the
//! control-cost amortization this executor exists to demonstrate; the
//! `DepAnalysis` spans it emits are what the blame profiler compares
//! across strategies.
//!
//! ## Scalar feedback
//!
//! The sequencer evaluates replicated control flow (`For`/`While`/`If`
//! trip counts and conditions) in its own scalar environment. Scalars
//! produced by `AllReduce` collectives exist only on the shards, so
//! the sequencer publishes its pending segment (the shards cannot
//! reach the collective otherwise), then blocks on a feedback channel
//! from the designated shard 0, which sends each folded value exactly
//! once (replays after a rollback are suppressed by the useful-work
//! gate). The fold is bit-identical on every shard, so feeding the
//! sequencer from shard 0 preserves replication.
//!
//! ## Rollback
//!
//! Epoch-boundary batches (`step = Some(it)`) drive the same
//! snapshot/crash/integrity machinery as the SPMD executor
//! (`ShardExec::boundary`); the snapshot's resume token is the
//! boundary batch's log index, and a rollback simply rewinds the read
//! cursor — the log itself is immutable, which is what makes replay
//! trivially consistent.

use crate::collective::{hang_timeout, DynamicCollective, ShardBarrier};
use crate::launch_log::{batch_limit_from_env, replicas_from_env, LaunchLog, LogCursor};
use crate::memo::launch_sig;
use crate::metrics::{self, Counter, MetricsHandle, Timer};
use crate::plan::{build_exchange_plan, SetupStats};
use crate::pool::ChunkPool;
use crate::ring;
use crate::spmd_exec::{
    allocate_shard_data, finalize_into_store, panic_message, CopyMsg, PanicGuard, Resilience,
    ResilienceOptions, ShardData, ShardExec, ShardStats,
};
use regent_cr::spmd::{block_range, owner_of, ForestOracle};
use regent_cr::{SpmdArg, SpmdLaunch, SpmdProgram, SpmdStmt};
use regent_geometry::DynPoint;
use regent_ir::{Privilege, Store};
use regent_region::RegionId;
use regent_trace::{EventKind, OverlapOracle, TraceBuf, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

/// Capacity of the shard-0 → sequencer scalar-feedback channel. The
/// protocol sends exactly one folded value per `AllReduce` and the
/// sequencer blocks for it immediately after publishing the segment,
/// so in a correct run depth never exceeds 1; the slack only exists so
/// a slow sequencer doesn't stall shard 0 between nearby collectives.
/// A full channel therefore means the sequencer has stopped consuming
/// — the sender gives it one hang-timeout to drain, then declares a
/// likely deadlock instead of blocking forever on an unbounded queue.
const FEEDBACK_BOUND: usize = 4;

/// One operation in the launch log: a leaf statement of the compiled
/// body plus, for launches, the [`launch_sig`] structural signature
/// replica leaders use to amortize dependence analysis.
pub(crate) struct LogRecord<'a> {
    /// The leaf statement (never control flow — the sequencer unrolls
    /// `For`/`While`/`If` while appending).
    stmt: &'a SpmdStmt,
    /// Structural signature of `Launch` records (task, representative
    /// point, region requirements); 0 for every other statement kind.
    sig: u64,
}

/// Shared-log execution statistics, reported beside the per-shard
/// [`ShardStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LogStats {
    /// Records the sequencer appended (producer-side submissions).
    pub appended_records: u64,
    /// Flat-combining rounds the sequencer ran.
    pub combines: u64,
    /// Batches published to the log.
    pub batches: u64,
    /// Executor replicas (NUMA domains) the shards were grouped into.
    pub replicas: u32,
    /// Largest consumer cursor lag (in batches) observed by any shard.
    pub max_cursor_lag: u64,
}

/// Result of a shared-log execution.
pub struct LogRunResult {
    /// Final scalar environment (identical on all shards and the
    /// sequencer; shard 0's).
    pub env: Vec<f64>,
    /// Dynamic intersection timings (Table 1).
    pub setup: SetupStats,
    /// Aggregated execution statistics.
    pub stats: ShardStats,
    /// Per-shard statistics.
    pub per_shard: Vec<ShardStats>,
    /// Launch-log statistics.
    pub log: LogStats,
}

/// Executes a control-replicated program through the shared launch
/// log (see the module docs).
pub fn execute_log(spmd: &SpmdProgram, store: &mut Store) -> LogRunResult {
    execute_log_traced(spmd, store, &Tracer::disabled())
}

/// [`execute_log`] recording events into `tracer`: shard `s` records
/// on track `shard-s`, the sequencer on track `log-seq`.
pub fn execute_log_traced(
    spmd: &SpmdProgram,
    store: &mut Store,
    tracer: &Arc<Tracer>,
) -> LogRunResult {
    let env: Vec<f64> = spmd.scalars.iter().map(|s| s.init).collect();
    // CI fault smoke: REGENT_FAULT_SEED / REGENT_CORRUPT upgrade every
    // plain run to a resilient one, exactly like the SPMD executor.
    let env_opts = ResilienceOptions::from_env(spmd.num_shards);
    execute_log_inner(spmd, store, env, tracer, env_opts.as_ref())
}

/// Executes through the shared log under an explicit fault plan with
/// epoch-based checkpoint–restart (the log-cursor variant of
/// `execute_spmd_resilient`).
pub fn execute_log_resilient(
    spmd: &SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
) -> LogRunResult {
    execute_log_resilient_traced(spmd, store, opts, &Tracer::disabled())
}

/// [`execute_log_resilient`] recording events into `tracer`.
pub fn execute_log_resilient_traced(
    spmd: &SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    tracer: &Arc<Tracer>,
) -> LogRunResult {
    let env: Vec<f64> = spmd.scalars.iter().map(|s| s.init).collect();
    execute_log_inner(spmd, store, env, tracer, Some(opts))
}

/// A shard thread's return value: final scalar environment, execution
/// stats, region data, and the maximum log-cursor lag it observed.
type ShardOutcome = (Vec<f64>, ShardStats, ShardData, u64);

/// Seals the log when dropped, so consumers wake (with `None`) even
/// when the sequencer unwinds mid-program.
struct SealOnDrop<'l, T>(&'l LaunchLog<T>);

impl<T> Drop for SealOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.seal();
    }
}

fn execute_log_inner(
    spmd: &SpmdProgram,
    store: &mut Store,
    initial_env: Vec<f64>,
    tracer: &Arc<Tracer>,
    resilience: Option<&ResilienceOptions>,
) -> LogRunResult {
    let plan = build_exchange_plan(spmd);
    let ns = spmd.num_shards;
    let n_replicas = replicas_from_env(ns);
    let collective = DynamicCollective::new(ns);
    let barrier = ShardBarrier::new(ns);

    // Mesh of rings between shards — identical to the SPMD
    // executor: each shard owns its sender row, so a dead shard
    // disconnects its peers instead of hanging them.
    let (senders, receivers) =
        ring::copy_mesh::<CopyMsg>(ns, ring::data_plane_from_env(), ring::ring_cap_from_env());
    let pin = ring::pin_cores_enabled();

    let log: LaunchLog<LogRecord<'_>> = LaunchLog::new(1, batch_limit_from_env());
    let (fb_tx, fb_rx) = sync_channel::<f64>(FEEDBACK_BOUND);
    let mut fb_slot = Some(fb_tx);

    let mut results: Vec<Option<ShardOutcome>> = (0..ns).map(|_| None).collect();
    let mut seq_result: Option<(Vec<f64>, LogStats)> = None;

    std::thread::scope(|scope| {
        let log = &log;
        let seq_handle = {
            let collective = &collective;
            let barrier = &barrier;
            let init_env = initial_env.clone();
            let tracer = Arc::clone(tracer);
            scope.spawn(move || {
                // Poison the shared primitives if the sequencer
                // unwinds, and always seal the log so consumers end.
                // The sequencer is not a shard, so it never self-blames
                // on a death board.
                let _guard = PanicGuard {
                    barrier,
                    collective,
                    shard: u32::MAX,
                    board: None,
                };
                let _seal = SealOnDrop(log);
                let seq = Sequencer {
                    spmd,
                    log,
                    feedback: fb_rx,
                    env: init_env,
                    epoch: 0,
                    loop_depth: 0,
                    pending_step: None,
                    tb: tracer.buffer("log-seq"),
                    mx: metrics::global().handle("log-seq"),
                    stats: LogStats::default(),
                };
                seq.run()
            })
        };

        let mut handles = Vec::with_capacity(ns);
        for (shard, (rx_row, tx_row)) in receivers.into_iter().zip(senders).enumerate() {
            let plan = &plan;
            let collective = &collective;
            let barrier = &barrier;
            let store_ref: &Store = store;
            let init_env = &initial_env;
            let tracer = Arc::clone(tracer);
            let fb = if shard == 0 { fb_slot.take() } else { None };
            handles.push(scope.spawn(move || {
                let _guard = PanicGuard {
                    barrier,
                    collective,
                    shard: shard as u32,
                    board: resilience.and_then(|o| o.board.clone()),
                };
                if pin {
                    ring::pin_thread_to_core(shard);
                }
                let mut data = allocate_shard_data(spmd, shard, store_ref);
                if resilience.is_some_and(|o| o.integrity || o.plan.corrupt_rate > 0.0) {
                    for inst in data.insts.values_mut() {
                        inst.seal();
                    }
                }
                let mut exec = ShardExec {
                    spmd,
                    plan,
                    shard,
                    data,
                    env: init_env.clone(),
                    tx: tx_row,
                    rx: rx_row,
                    collective,
                    barrier,
                    stats: ShardStats::default(),
                    local_queue: HashMap::new(),
                    offset_cache: HashMap::new(),
                    tb: tracer.buffer(&format!("shard-{shard}")),
                    mx: metrics::global().handle(&format!("shard-{shard}")),
                    launch_seq: 0,
                    loop_depth: 0,
                    copy_occurrence: HashMap::new(),
                    collective_seq: 0,
                    epoch: 0,
                    replay_until: 0,
                    resilience: resilience.map(Resilience::new),
                    outer_loop_seq: 0,
                    pool: ChunkPool::new(),
                };
                let replica = owner_of(ns, n_replicas, shard) as u32;
                let (block_start, _) = block_range(ns, n_replicas, replica as usize);
                let mut analysis = (shard == block_start).then(|| ReplicaAnalysis {
                    oracle: ForestOracle::new(&spmd.forest),
                    seen_pairs: HashSet::new(),
                });
                let max_lag = run_shard_driver(&mut exec, log, replica, analysis.as_mut(), fb);
                exec.flush_pool_metrics();
                exec.tb.flush();
                (exec.env, exec.stats, exec.data, max_lag)
            }));
        }
        // Join everything before reporting failures (avoids a
        // double panic while the scope holds unjoined handles).
        let mut failures: Vec<(String, String)> = Vec::new();
        for (shard, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[shard] = Some(r),
                Err(e) => failures.push((format!("shard {shard}"), panic_message(&*e))),
            }
        }
        match seq_handle.join() {
            Ok(r) => seq_result = Some(r),
            Err(e) => failures.push(("sequencer".to_string(), panic_message(&*e))),
        }
        // Prefer the root cause over secondary "poisoned" unwinds —
        // that is the message a supervisor classifies.
        if let Some((who, msg)) = failures
            .iter()
            .find(|(_, m)| !m.contains("poisoned"))
            .or(failures.first())
        {
            panic!(
                "{who} panicked: {msg}{}",
                if failures.len() > 1 {
                    format!(" ({} threads failed in total)", failures.len())
                } else {
                    String::new()
                }
            );
        }
    });

    let (seq_env, mut log_stats) = seq_result.expect("sequencer result missing after clean join");
    log_stats.replicas = n_replicas as u32;

    let mut per_shard = Vec::with_capacity(ns);
    let mut env0: Option<Vec<f64>> = None;
    let mut agg = ShardStats::default();
    let mut datas = Vec::with_capacity(ns);
    for r in results.into_iter() {
        let (env, stats, data, max_lag) =
            r.expect("shard result missing despite all threads joining cleanly");
        if let Some(ref e0) = env0 {
            debug_assert_eq!(
                e0, &env,
                "scalar environments diverged across shards (log replication bug)"
            );
        } else {
            env0 = Some(env);
        }
        log_stats.max_cursor_lag = log_stats.max_cursor_lag.max(max_lag);
        agg.merge_from(&stats);
        per_shard.push(stats);
        datas.push(data);
    }
    debug_assert_eq!(
        env0.as_deref(),
        Some(seq_env.as_slice()),
        "sequencer environment diverged from the shards (feedback protocol bug)"
    );
    finalize_into_store(spmd, store, &datas);
    metrics::export_env();

    LogRunResult {
        env: env0.unwrap_or(seq_env),
        setup: plan.setup,
        stats: agg,
        per_shard,
        log: log_stats,
    }
}

/// The control program's single runner: walks the compiled body once,
/// evaluating replicated control flow locally and appending every leaf
/// statement to the log. See the module docs for the epoch-segmentation
/// and AllReduce-feedback protocols.
struct Sequencer<'a, 'l> {
    spmd: &'a SpmdProgram,
    log: &'l LaunchLog<LogRecord<'a>>,
    feedback: Receiver<f64>,
    env: Vec<f64>,
    epoch: u64,
    loop_depth: u32,
    /// Boundary marker for the next published batch: `Some(it)` right
    /// after entering outermost-loop iteration `it`.
    pending_step: Option<u64>,
    tb: TraceBuf,
    mx: MetricsHandle,
    stats: LogStats,
}

impl<'a> Sequencer<'a, '_> {
    fn run(mut self) -> (Vec<f64>, LogStats) {
        let spmd = self.spmd;
        self.walk(&spmd.body);
        // Tail records after the last loop.
        self.flush();
        self.log.seal();
        self.tb.flush();
        (self.env, self.stats)
    }

    fn walk(&mut self, stmts: &'a [SpmdStmt]) {
        for s in stmts {
            match s {
                SpmdStmt::Launch(l) => {
                    let sig = launch_record_sig(self.spmd, l);
                    self.submit(s, sig);
                }
                SpmdStmt::Copy(_) | SpmdStmt::ResetTemp(_) | SpmdStmt::Barrier => {
                    self.submit(s, 0);
                }
                SpmdStmt::SetScalar { var, expr } => {
                    // Replicated assignment: evaluated locally (the
                    // sequencer's env drives control flow) *and*
                    // appended (each shard re-evaluates it in its own
                    // identical env).
                    self.env[var.0 as usize] = expr.eval(&self.env);
                    self.submit(s, 0);
                }
                SpmdStmt::AllReduce { var, .. } => {
                    self.submit(s, 0);
                    // The fold happens on the shards. Publish the
                    // pending segment — the shards cannot reach the
                    // collective otherwise — then block for shard 0's
                    // feedback of the folded value.
                    self.flush();
                    let folded = self
                        .feedback
                        .recv_timeout(hang_timeout())
                        .unwrap_or_else(|e| {
                            panic!(
                                "likely deadlock: sequencer waited {:?} for AllReduce feedback on \
                             scalar {} ({e:?}) — shard 0 stalled or died",
                                hang_timeout(),
                                var.0
                            )
                        });
                    self.env[var.0 as usize] = folded;
                }
                SpmdStmt::For { count, body } => {
                    let n = count.eval(&self.env).max(0.0) as u64;
                    let mut it = 0u64;
                    while it < n {
                        self.iteration(it, body);
                        it += 1;
                    }
                }
                SpmdStmt::While { cond, body } => {
                    let mut it = 0u64;
                    while cond.eval(&self.env) != 0.0 {
                        self.iteration(it, body);
                        it += 1;
                    }
                }
                SpmdStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if cond.eval(&self.env) != 0.0 {
                        self.walk(then_body);
                    } else {
                        self.walk(else_body);
                    }
                }
            }
        }
    }

    /// One loop iteration. At the outermost level this is an epoch
    /// segment: publish whatever preceded it, mark the next batch as
    /// the boundary of iteration `it`, and publish the segment's tail
    /// before the epoch counter advances (so every batch carries the
    /// epoch its records belong to).
    fn iteration(&mut self, it: u64, body: &'a [SpmdStmt]) {
        if self.loop_depth == 0 {
            self.flush();
            self.pending_step = Some(it);
        }
        self.loop_depth += 1;
        self.walk(body);
        self.loop_depth -= 1;
        if self.loop_depth == 0 {
            self.flush();
            self.epoch += 1;
        }
    }

    fn submit(&mut self, stmt: &'a SpmdStmt, sig: u64) {
        self.log.submit(0, LogRecord { stmt, sig });
        self.stats.appended_records += 1;
        self.mx.incr(Counter::LogAppends);
    }

    /// Runs the flat combiner over the sequencer's pending submissions
    /// (a no-op when nothing is pending and no boundary marker is
    /// due).
    fn flush(&mut self) {
        let step = self.pending_step.take();
        if self.log.pending(0) == 0 && step.is_none() {
            return;
        }
        let t0 = self.tb.now();
        let m0 = self.mx.start();
        let first = self.log.published();
        let n = self.log.combine(self.epoch, step);
        let published = self.log.published() - first;
        self.stats.combines += 1;
        self.stats.batches += published as u64;
        self.mx.add(Counter::LogCombinedRecords, n as u64);
        self.mx.add(Counter::LogCombinedBatches, published as u64);
        self.mx.record_since(m0, Timer::LogCombineNs);
        if self.tb.is_enabled() {
            self.tb.push(
                t0,
                0,
                EventKind::LogAppend {
                    epoch: self.epoch,
                    batch: first as u32,
                    records: n as u32,
                },
            );
            self.tb.span_since(
                t0,
                EventKind::LogCombine {
                    batch: first as u32,
                    records: n as u32,
                },
            );
        }
    }
}

/// The region requirements of one launch record at the use/partition
/// granularity — the inputs to both the record signature and the
/// per-replica batch analysis.
fn launch_accesses(spmd: &SpmdProgram, l: &SpmdLaunch) -> Vec<(RegionId, Privilege)> {
    let decl = spmd.task(l.task);
    l.args
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let base = match a {
                SpmdArg::Use(u) => spmd.uses[*u].base,
                SpmdArg::Temp(t) => spmd.temps[t.0 as usize].base,
            };
            (
                regent_cr::analysis::base_region(&spmd.forest, base),
                decl.params[i].privilege,
            )
        })
        .collect()
}

/// [`launch_sig`] of a launch record: the task, a representative point
/// of the launch domain, and the use-level region requirements.
fn launch_record_sig(spmd: &SpmdProgram, l: &SpmdLaunch) -> u64 {
    let accesses = launch_accesses(spmd, l);
    let point = spmd.launch_domains[l.domain.0 as usize]
        .first()
        .copied()
        .unwrap_or_else(|| DynPoint::new(&[0]));
    launch_sig(l.task.0, &point, &accesses)
}

/// Per-replica dependence-analysis state, held by the replica's leader
/// shard. Signature pairs already analyzed are skipped — analysis cost
/// is amortized across epochs, the same economy the memoized implicit
/// executor gets from epoch templates.
struct ReplicaAnalysis<'a> {
    oracle: ForestOracle<'a>,
    seen_pairs: HashSet<(u64, u64)>,
}

/// Runs the once-per-replica-per-batch dependence analysis: pairwise
/// overlap/privilege checks between the batch's launch records at the
/// use/partition granularity. Emits one `DepAnalysis` span (`pos` is
/// the replica id) so the blame profiler can compare control cost
/// across strategies.
fn analyze_batch(
    exec: &mut ShardExec<'_>,
    records: &[LogRecord<'_>],
    replica: u32,
    an: &mut ReplicaAnalysis<'_>,
) {
    let launches: Vec<(&SpmdLaunch, u64)> = records
        .iter()
        .filter_map(|r| match r.stmt {
            SpmdStmt::Launch(l) => Some((l, r.sig)),
            _ => None,
        })
        .collect();
    if launches.is_empty() {
        return;
    }
    let t0 = exec.tb.now();
    let m0 = exec.mx.start();
    let first_launch = exec.launch_seq;
    let accesses: Vec<Vec<(RegionId, Privilege)>> = launches
        .iter()
        .map(|(l, _)| launch_accesses(exec.spmd, l))
        .collect();
    let mut checks = 0u32;
    for i in 0..launches.len() {
        for j in 0..i {
            let (si, sj) = (launches[i].1, launches[j].1);
            let key = if si <= sj { (si, sj) } else { (sj, si) };
            if !an.seen_pairs.insert(key) {
                continue;
            }
            for &(ra, pa) in &accesses[i] {
                for &(rb, pb) in &accesses[j] {
                    checks += 1;
                    // The conflict verdict is what the SPMD transform
                    // already baked into the copy placement; computing
                    // it here is the per-batch analysis cost being
                    // measured, not a scheduling input.
                    let _conflict = an.oracle.overlaps(ra.0, rb.0)
                        && (!matches!(pa, Privilege::Read) || !matches!(pb, Privilege::Read));
                }
            }
        }
    }
    exec.mx.incr(Counter::LogAnalyses);
    exec.mx.record_since(m0, Timer::LogAnalysisNs);
    exec.tb.span_since(
        t0,
        EventKind::DepAnalysis {
            launch: first_launch,
            pos: replica,
            checks,
        },
    );
}

/// Sends one folded `AllReduce` value to the sequencer over the
/// bounded feedback channel, giving a stalled sequencer one hang
/// timeout to drain the backlog before declaring a likely deadlock
/// (`std` sync channels have no `send_timeout`, so this polls
/// `try_send` against a deadline).
fn send_feedback(fb: &SyncSender<f64>, var: u32, value: f64) {
    let deadline = Instant::now() + hang_timeout();
    let mut v = value;
    loop {
        match fb.try_send(v) {
            Ok(()) => return,
            Err(TrySendError::Disconnected(_)) => {
                panic!("sequencer died before the run finished (feedback channel disconnected)")
            }
            Err(TrySendError::Full(back)) => {
                if Instant::now() >= deadline {
                    panic!(
                        "likely deadlock: shard 0 waited {:?} to feed back AllReduce scalar {} — \
                         feedback channel full ({FEEDBACK_BOUND} pending), sequencer stalled",
                        hang_timeout(),
                        var
                    );
                }
                v = back;
                std::thread::yield_now();
            }
        }
    }
}

/// Tails the log and executes every record through the shared
/// [`ShardExec`] engine. Returns the largest cursor lag observed.
fn run_shard_driver(
    exec: &mut ShardExec<'_>,
    log: &LaunchLog<LogRecord<'_>>,
    replica: u32,
    mut analysis: Option<&mut ReplicaAnalysis<'_>>,
    fb: Option<SyncSender<f64>>,
) -> u64 {
    let mut cursor = LogCursor::new();
    let mut max_lag = 0u64;
    while let Some(batch) = log.wait(cursor.next) {
        // Lag counts this batch too: published minus consumed.
        let lag = cursor.lag(log) as u64;
        max_lag = max_lag.max(lag);
        cursor.next += 1;
        exec.epoch = batch.epoch;
        if let Some(it) = batch.step {
            // Epoch boundary: snapshot / crash / integrity sweep, with
            // the boundary batch's log index as the resume token.
            if let Some(token) = exec.boundary(it == 0, batch.index as u64) {
                cursor.rewind(token as usize);
                continue;
            }
            exec.tb.instant(EventKind::StepBegin { step: it });
        }
        if let Some(an) = analysis.as_deref_mut() {
            // Replica leader: consumption event, lag metric, and the
            // once-per-replica-per-batch dependence analysis.
            exec.mx.add(Counter::LogCursorLag, lag);
            if exec.tb.is_enabled() {
                exec.tb.instant(EventKind::LogConsume {
                    replica,
                    batch: batch.index as u32,
                    records: batch.records.len() as u32,
                    lag: lag as u32,
                });
            }
            analyze_batch(exec, &batch.records, replica, an);
        }
        for rec in &batch.records {
            exec.run_stmt(rec.stmt);
            if let (Some(fb), SpmdStmt::AllReduce { var, .. }) = (&fb, rec.stmt) {
                // Designated feedback shard: return the folded value
                // to the sequencer — once per logical collective (the
                // useful-work gate suppresses post-rollback replays).
                if exec.useful_work() {
                    send_feedback(fb, var.0, exec.env[var.0 as usize]);
                }
            }
        }
    }
    max_lag
}
