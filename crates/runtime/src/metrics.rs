//! Always-on, low-overhead runtime metrics.
//!
//! Tracing ([`regent_trace`]) records *everything* and is therefore
//! opt-in; this registry records *aggregates* — per-shard counters and
//! log2-bucket latency histograms for the operations the paper's
//! analysis cares about (launches, dependence analysis, copies,
//! barrier/collective waits, memo hits, retransmits) — cheaply enough
//! to stay on in every run. Each executor thread owns a
//! [`MetricsHandle`] (no locks on the hot path); handles merge into the
//! process-global [`MetricsRegistry`] when dropped, and the executors
//! call [`export_env`] at shutdown: setting `REGENT_METRICS=<path>`
//! writes the aggregated registry as JSON to `<path>` and as
//! Prometheus-style text to `<path>.prom`. Setting `REGENT_METRICS_OFF`
//! disables collection entirely (the A/B switch the overhead
//! measurement in EXPERIMENTS.md uses).

use regent_trace::json::escape_into;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Monotonic event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    /// Task launches issued (control thread or shard).
    Launches,
    /// Point-task kernels executed.
    TaskRuns,
    /// Copy messages extracted and sent (producer side).
    CopiesIssued,
    /// Copy messages received and applied (consumer side).
    CopiesApplied,
    /// Barrier waits entered.
    BarrierWaits,
    /// Dynamic-collective waits entered (§4.4).
    CollectiveWaits,
    /// Pairwise region dependence checks performed.
    DepChecks,
    /// Epochs fully replayed from a memoized template.
    MemoHits,
    /// Replay attempts that diverged back to analysis.
    MemoMisses,
    /// Epoch templates captured.
    MemoCaptures,
    /// Point tasks whose dependence bookkeeping was replayed.
    MemoReplayedTasks,
    /// Corrupted/lost delivery attempts absorbed by retransmission.
    Retransmits,
    /// Checkpoint snapshots taken.
    Checkpoints,
    /// Checkpoint rollbacks performed.
    Restores,
    /// Point tasks executed sequentially (hybrid segments).
    SequentialTasks,
    /// Replicated segments executed (hybrid programs).
    ReplicatedSegments,
    /// Records appended to the shared launch log (sequencer side).
    LogAppends,
    /// Batches published by the flat combiner.
    LogCombinedBatches,
    /// Records combined into published batches.
    LogCombinedRecords,
    /// Sum of per-batch consumer cursor lags (replica leaders).
    LogCursorLag,
    /// Per-replica per-batch dependence analyses run.
    LogAnalyses,
    /// Jobs admitted into a service shard pool.
    JobsAdmitted,
    /// Jobs rejected by admission control (`Overloaded`).
    JobsShed,
    /// Job retry attempts after transient failures.
    JobsRetried,
    /// Tenant shard-allocation reductions under sustained pressure.
    JobsDegraded,
    /// Jobs that ran to completion under supervision.
    JobsCompleted,
    /// Jobs quarantined after a permanent (non-retryable) failure.
    JobsQuarantined,
    /// Exchange payload buffers served from the shard's freelist.
    PoolReuses,
    /// Exchange payload buffers that had to be freshly allocated.
    PoolAllocs,
    /// Ring sends that found the ring full and had to wait
    /// (back-pressure stalls on the lock-free data plane).
    RingStalls,
    /// Executor attempts launched by the failover driver (1 per run
    /// when nothing dies).
    FailoverAttempts,
    /// Shard deaths observed by the failover driver (kills, panics,
    /// hangs).
    PeerDeaths,
    /// Membership epochs committed: each is one shard evicted and the
    /// mesh rebuilt one smaller.
    MembershipShrinks,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 33;

    /// All counters, in declaration order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Launches,
        Counter::TaskRuns,
        Counter::CopiesIssued,
        Counter::CopiesApplied,
        Counter::BarrierWaits,
        Counter::CollectiveWaits,
        Counter::DepChecks,
        Counter::MemoHits,
        Counter::MemoMisses,
        Counter::MemoCaptures,
        Counter::MemoReplayedTasks,
        Counter::Retransmits,
        Counter::Checkpoints,
        Counter::Restores,
        Counter::SequentialTasks,
        Counter::ReplicatedSegments,
        Counter::LogAppends,
        Counter::LogCombinedBatches,
        Counter::LogCombinedRecords,
        Counter::LogCursorLag,
        Counter::LogAnalyses,
        Counter::JobsAdmitted,
        Counter::JobsShed,
        Counter::JobsRetried,
        Counter::JobsDegraded,
        Counter::JobsCompleted,
        Counter::JobsQuarantined,
        Counter::PoolReuses,
        Counter::PoolAllocs,
        Counter::RingStalls,
        Counter::FailoverAttempts,
        Counter::PeerDeaths,
        Counter::MembershipShrinks,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Launches => "launches",
            Counter::TaskRuns => "task_runs",
            Counter::CopiesIssued => "copies_issued",
            Counter::CopiesApplied => "copies_applied",
            Counter::BarrierWaits => "barrier_waits",
            Counter::CollectiveWaits => "collective_waits",
            Counter::DepChecks => "dep_checks",
            Counter::MemoHits => "memo_hits",
            Counter::MemoMisses => "memo_misses",
            Counter::MemoCaptures => "memo_captures",
            Counter::MemoReplayedTasks => "memo_replayed_tasks",
            Counter::Retransmits => "retransmits",
            Counter::Checkpoints => "checkpoints",
            Counter::Restores => "restores",
            Counter::SequentialTasks => "sequential_tasks",
            Counter::ReplicatedSegments => "replicated_segments",
            Counter::LogAppends => "log_appends",
            Counter::LogCombinedBatches => "log_combined_batches",
            Counter::LogCombinedRecords => "log_combined_records",
            Counter::LogCursorLag => "log_cursor_lag",
            Counter::LogAnalyses => "log_analyses",
            Counter::JobsAdmitted => "jobs_admitted",
            Counter::JobsShed => "jobs_shed",
            Counter::JobsRetried => "jobs_retried",
            Counter::JobsDegraded => "jobs_degraded",
            Counter::JobsCompleted => "jobs_completed",
            Counter::JobsQuarantined => "jobs_quarantined",
            Counter::PoolReuses => "pool_reuses",
            Counter::PoolAllocs => "pool_allocs",
            Counter::RingStalls => "ring_stalls",
            Counter::FailoverAttempts => "failover_attempts",
            Counter::PeerDeaths => "peer_deaths",
            Counter::MembershipShrinks => "membership_shrinks",
        }
    }

    /// One-line description, emitted as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            Counter::Launches => "Task launches issued (control thread or shard)",
            Counter::TaskRuns => "Point-task kernels executed",
            Counter::CopiesIssued => "Copy messages extracted and sent (producer side)",
            Counter::CopiesApplied => "Copy messages received and applied (consumer side)",
            Counter::BarrierWaits => "Barrier waits entered",
            Counter::CollectiveWaits => "Dynamic-collective waits entered",
            Counter::DepChecks => "Pairwise region dependence checks performed",
            Counter::MemoHits => "Epochs fully replayed from a memoized template",
            Counter::MemoMisses => "Replay attempts that diverged back to analysis",
            Counter::MemoCaptures => "Epoch templates captured",
            Counter::MemoReplayedTasks => "Point tasks whose dependence bookkeeping was replayed",
            Counter::Retransmits => "Corrupted or lost deliveries absorbed by retransmission",
            Counter::Checkpoints => "Checkpoint snapshots taken",
            Counter::Restores => "Checkpoint rollbacks performed",
            Counter::SequentialTasks => "Point tasks executed sequentially (hybrid segments)",
            Counter::ReplicatedSegments => "Replicated segments executed (hybrid programs)",
            Counter::LogAppends => "Records appended to the shared launch log",
            Counter::LogCombinedBatches => "Batches published by the flat combiner",
            Counter::LogCombinedRecords => "Records combined into published batches",
            Counter::LogCursorLag => "Sum of per-batch consumer cursor lags",
            Counter::LogAnalyses => "Per-replica per-batch dependence analyses run",
            Counter::JobsAdmitted => "Jobs admitted into a service shard pool",
            Counter::JobsShed => "Jobs rejected by admission control",
            Counter::JobsRetried => "Job retry attempts after transient failures",
            Counter::JobsDegraded => "Tenant shard-allocation reductions under pressure",
            Counter::JobsCompleted => "Jobs that ran to completion under supervision",
            Counter::JobsQuarantined => "Jobs quarantined after a permanent failure",
            Counter::PoolReuses => "Exchange payload buffers served from the freelist",
            Counter::PoolAllocs => "Exchange payload buffers freshly allocated",
            Counter::RingStalls => "Ring sends stalled on back-pressure",
            Counter::FailoverAttempts => "Executor attempts launched by the failover driver",
            Counter::PeerDeaths => "Shard deaths observed by the failover driver",
            Counter::MembershipShrinks => "Membership epochs committed (one eviction each)",
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// Latency histograms (all in nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Timer {
    /// Kernel execution time per point task.
    TaskRunNs,
    /// Dependence-analysis time per task (implicit executor).
    DepAnalysisNs,
    /// Producer-side copy time (extract + send).
    CopyIssueNs,
    /// Consumer-side copy time (blocking receive + apply).
    CopyWaitNs,
    /// Time blocked at a barrier.
    BarrierWaitNs,
    /// Time blocked in a dynamic collective.
    CollectiveWaitNs,
    /// Checkpoint snapshot time.
    CheckpointNs,
    /// Checkpoint restore time.
    RestoreNs,
    /// Flat-combining round time (sequencer side).
    LogCombineNs,
    /// Per-replica per-batch dependence-analysis time.
    LogAnalysisNs,
    /// Time a supervised job waited in the service admission queue.
    QueueWaitNs,
    /// Time spent in the integrity layer: sealing instance columns,
    /// verifying seals at epoch boundaries, and checksumming exchange frames.
    IntegrityNs,
    /// Mean-time-to-repair: from the failover driver catching a failed
    /// attempt to the next attempt being ready to launch (membership
    /// agreement + checkpoint remap; excludes replayed epochs).
    MttrNs,
    /// Time reconstructing the dead shard's subregion instances onto
    /// the survivors from the last committed checkpoint.
    FailoverReconstructNs,
}

impl Timer {
    /// Number of timers.
    pub const COUNT: usize = 14;

    /// All timers, in declaration order.
    pub const ALL: [Timer; Timer::COUNT] = [
        Timer::TaskRunNs,
        Timer::DepAnalysisNs,
        Timer::CopyIssueNs,
        Timer::CopyWaitNs,
        Timer::BarrierWaitNs,
        Timer::CollectiveWaitNs,
        Timer::CheckpointNs,
        Timer::RestoreNs,
        Timer::LogCombineNs,
        Timer::LogAnalysisNs,
        Timer::QueueWaitNs,
        Timer::IntegrityNs,
        Timer::MttrNs,
        Timer::FailoverReconstructNs,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            Timer::TaskRunNs => "task_run_ns",
            Timer::DepAnalysisNs => "dep_analysis_ns",
            Timer::CopyIssueNs => "copy_issue_ns",
            Timer::CopyWaitNs => "copy_wait_ns",
            Timer::BarrierWaitNs => "barrier_wait_ns",
            Timer::CollectiveWaitNs => "collective_wait_ns",
            Timer::CheckpointNs => "checkpoint_ns",
            Timer::RestoreNs => "restore_ns",
            Timer::LogCombineNs => "log_combine_ns",
            Timer::LogAnalysisNs => "log_analysis_ns",
            Timer::QueueWaitNs => "queue_wait_ns",
            Timer::IntegrityNs => "integrity_ns",
            Timer::MttrNs => "mttr_ns",
            Timer::FailoverReconstructNs => "failover_reconstruct_ns",
        }
    }

    /// One-line description, emitted as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            Timer::TaskRunNs => "Kernel execution time per point task (ns)",
            Timer::DepAnalysisNs => "Dependence-analysis time per task (ns)",
            Timer::CopyIssueNs => "Producer-side copy time: extract + send (ns)",
            Timer::CopyWaitNs => "Consumer-side copy time: receive + apply (ns)",
            Timer::BarrierWaitNs => "Time blocked at a barrier (ns)",
            Timer::CollectiveWaitNs => "Time blocked in a dynamic collective (ns)",
            Timer::CheckpointNs => "Checkpoint snapshot time (ns)",
            Timer::RestoreNs => "Checkpoint restore time (ns)",
            Timer::LogCombineNs => "Flat-combining round time, sequencer side (ns)",
            Timer::LogAnalysisNs => "Per-replica per-batch dependence-analysis time (ns)",
            Timer::QueueWaitNs => "Time a job waited in the service admission queue (ns)",
            Timer::IntegrityNs => "Time sealing, verifying, and checksumming instances (ns)",
            Timer::MttrNs => "Mean-time-to-repair per failover attempt (ns)",
            Timer::FailoverReconstructNs => "Time reconstructing dead-shard instances (ns)",
        }
    }

    fn index(self) -> usize {
        Timer::ALL.iter().position(|t| *t == self).unwrap()
    }
}

/// Number of log2 buckets per histogram (covers single nanoseconds up
/// to ~9 simulated minutes per sample).
pub const HIST_BUCKETS: usize = 40;

/// A log2-bucket latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0 ns samples).
/// The terminal bucket is an *overflow* bucket: samples at or above
/// `2^(HIST_BUCKETS-1)` ns saturate into it, and exposition reports
/// them only under `le="+Inf"` — never under a finite bound they may
/// exceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Sample counts per log2 bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Hist {
    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        let b = if ns == 0 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Componentwise accumulation.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Mean sample, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) in nanoseconds, linearly
    /// interpolated within the landing log2 bucket. Returns 0 when
    /// empty. A quantile landing in the overflow bucket is reported as
    /// that bucket's lower bound (the histogram records no upper bound
    /// there), so tail estimates saturate rather than fabricate.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += n;
            if (cum as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { (1u128 << i) as f64 };
                if i == HIST_BUCKETS - 1 {
                    return lo;
                }
                let hi = (1u128 << (i + 1)) as f64;
                let frac = ((rank - prev) / n as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        (1u128 << (HIST_BUCKETS - 1)) as f64
    }
}

/// One shard's (or thread's) complete metric state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSet {
    /// Counter values, indexed by [`Counter::ALL`] order.
    pub counters: [u64; Counter::COUNT],
    /// Histograms, indexed by [`Timer::ALL`] order.
    pub timers: [Hist; Timer::COUNT],
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet {
            counters: [0; Counter::COUNT],
            timers: [Hist::default(); Timer::COUNT],
        }
    }
}

impl MetricSet {
    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Histogram of `t`.
    pub fn timer(&self, t: Timer) -> &Hist {
        &self.timers[t.index()]
    }

    /// Componentwise accumulation.
    pub fn merge(&mut self, other: &MetricSet) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.timers.iter_mut().zip(other.timers.iter()) {
            a.merge(b);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.timers.iter().all(|t| t.count == 0)
    }
}

/// Nanoseconds of CPU time consumed by the calling thread
/// (`CLOCK_THREAD_CPUTIME_ID`). Unlike a wall clock, time spent
/// descheduled does not accumulate, so a probe bracketing a short
/// section does not blow up when a preemption lands inside it — the
/// right clock for sub-millisecond instrumented sections on a busy
/// machine. Falls back to the wall clock where the raw syscall is
/// unavailable.
pub fn thread_cpu_ns() -> u64 {
    clock_ns(3) // CLOCK_THREAD_CPUTIME_ID
}

/// Nanoseconds of CPU time consumed by the whole process
/// (`CLOCK_PROCESS_CPUTIME_ID`) — the load-immune denominator for
/// "share of useful work" statistics: background load stretches wall
/// clock but not CPU time. Falls back to the wall clock where the raw
/// syscall is unavailable.
pub fn process_cpu_ns() -> u64 {
    clock_ns(2) // CLOCK_PROCESS_CPUTIME_ID
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn clock_ns(clockid: usize) -> u64 {
    let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
    let ret: isize;
    // SAFETY: clock_gettime(clockid, &mut ts) writes `ts` only for
    // the duration of the call.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 228isize => ret, // __NR_clock_gettime
            in("rdi") clockid,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret == 0 {
        ts[0] as u64 * 1_000_000_000 + ts[1] as u64
    } else {
        wall_fallback_ns()
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn clock_ns(clockid: usize) -> u64 {
    let mut ts = [0i64; 2];
    let ret: isize;
    // SAFETY: as above; aarch64 passes the syscall number in x8.
    unsafe {
        std::arch::asm!(
            "svc #0",
            inlateout("x0") clockid => ret,
            in("x1") ts.as_mut_ptr(),
            in("x8") 113usize, // __NR_clock_gettime
            options(nostack),
        );
    }
    if ret == 0 {
        ts[0] as u64 * 1_000_000_000 + ts[1] as u64
    } else {
        wall_fallback_ns()
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn clock_ns(_clockid: usize) -> u64 {
    wall_fallback_ns()
}

fn wall_fallback_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The process-global registry. Threads record into private
/// [`MetricsHandle`]s; dropped handles merge here under their label.
pub struct MetricsRegistry {
    enabled: bool,
    store: Mutex<BTreeMap<String, MetricSet>>,
}

/// The global registry. Collection is enabled unless the
/// `REGENT_METRICS_OFF` environment variable is set (to anything).
pub fn global() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        enabled: std::env::var_os("REGENT_METRICS_OFF").is_none(),
        store: Mutex::new(BTreeMap::new()),
    })
}

impl MetricsRegistry {
    /// Is collection on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A private recording handle for one thread, merged back under
    /// `label` when dropped.
    pub fn handle(&'static self, label: &str) -> MetricsHandle {
        MetricsHandle {
            enabled: self.enabled,
            label: label.to_string(),
            epoch: Instant::now(),
            set: Box::default(),
            registry: self,
        }
    }

    fn absorb(&self, label: &str, set: &MetricSet) {
        if set.is_empty() {
            return;
        }
        let mut store = self.store.lock().unwrap();
        store.entry(label.to_string()).or_default().merge(set);
    }

    /// Per-label snapshots, label-sorted.
    pub fn per_label(&self) -> Vec<(String, MetricSet)> {
        let store = self.store.lock().unwrap();
        store.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Everything merged into one set.
    pub fn aggregate(&self) -> MetricSet {
        let mut total = MetricSet::default();
        for (_, set) in self.per_label() {
            total.merge(&set);
        }
        total
    }

    /// Clears all recorded state (tests and A/B measurements).
    pub fn reset(&self) {
        self.store.lock().unwrap().clear();
    }

    /// Flat `(name, value)` pairs of the aggregate — nonzero counters
    /// plus count/mean per nonempty histogram — the metrics snapshot
    /// embedded in bench artifacts.
    pub fn snapshot_flat(&self) -> Vec<(String, f64)> {
        let total = self.aggregate();
        let mut out = Vec::new();
        for c in Counter::ALL {
            let v = total.get(c);
            if v > 0 {
                out.push((c.name().to_string(), v as f64));
            }
        }
        for t in Timer::ALL {
            let h = total.timer(t);
            if h.count > 0 {
                out.push((format!("{}_count", t.name()), h.count as f64));
                out.push((format!("{}_mean", t.name()), h.mean_ns()));
            }
        }
        out
    }

    /// Serializes the registry as JSON:
    /// `{"metricsSchema":1,"labels":{…},"total":{…}}`.
    pub fn to_json(&self) -> String {
        fn write_set(out: &mut String, set: &MetricSet) {
            out.push_str("{\"counters\":{");
            let mut first = true;
            for c in Counter::ALL {
                let v = set.get(c);
                if v == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                write!(out, "\"{}\":{v}", c.name()).unwrap();
            }
            out.push_str("},\"timers\":{");
            let mut first = true;
            for t in Timer::ALL {
                let h = set.timer(t);
                if h.count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                write!(
                    out,
                    "\"{}\":{{\"count\":{},\"sum_ns\":{},\"buckets\":{{",
                    t.name(),
                    h.count,
                    h.sum_ns
                )
                .unwrap();
                let mut bfirst = true;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    if !bfirst {
                        out.push(',');
                    }
                    bfirst = false;
                    write!(out, "\"{i}\":{n}").unwrap();
                }
                out.push_str("}}");
            }
            out.push_str("}}");
        }
        let mut out = String::from("{\"metricsSchema\":1,\"labels\":{");
        for (i, (label, set)) in self.per_label().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, label);
            out.push_str("\":");
            write_set(&mut out, set);
        }
        out.push_str("},\"total\":");
        write_set(&mut out, &self.aggregate());
        out.push('}');
        out
    }

    /// Serializes the registry as Prometheus text exposition:
    /// `# HELP`/`# TYPE` metadata per family, escaped label values,
    /// cumulative `le` buckets with the overflow bucket reported only
    /// under `+Inf`, one series per label.
    pub fn to_prometheus(&self) -> String {
        let labels = self.per_label();
        let mut out = String::new();
        for c in Counter::ALL {
            if labels.iter().all(|(_, s)| s.get(c) == 0) {
                continue;
            }
            writeln!(out, "# HELP regent_{}_total {}", c.name(), c.help()).unwrap();
            writeln!(out, "# TYPE regent_{}_total counter", c.name()).unwrap();
            for (label, set) in &labels {
                let v = set.get(c);
                if v > 0 {
                    writeln!(
                        out,
                        "regent_{}_total{{shard=\"{}\"}} {v}",
                        c.name(),
                        prom_escape(label)
                    )
                    .unwrap();
                }
            }
        }
        for t in Timer::ALL {
            if labels.iter().all(|(_, s)| s.timer(t).count == 0) {
                continue;
            }
            writeln!(out, "# HELP regent_{} {}", t.name(), t.help()).unwrap();
            writeln!(out, "# TYPE regent_{} histogram", t.name()).unwrap();
            for (label, set) in &labels {
                let h = set.timer(t);
                if h.count == 0 {
                    continue;
                }
                let label = prom_escape(label);
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    // The terminal bucket is the overflow bucket: its
                    // samples may exceed 2^HIST_BUCKETS, so they are
                    // reported only under the +Inf bound below.
                    if i == HIST_BUCKETS - 1 {
                        break;
                    }
                    writeln!(
                        out,
                        "regent_{}_bucket{{shard=\"{label}\",le=\"{}\"}} {cum}",
                        t.name(),
                        1u128 << (i + 1)
                    )
                    .unwrap();
                }
                writeln!(
                    out,
                    "regent_{}_bucket{{shard=\"{label}\",le=\"+Inf\"}} {}",
                    t.name(),
                    h.count
                )
                .unwrap();
                writeln!(
                    out,
                    "regent_{}_sum{{shard=\"{label}\"}} {}",
                    t.name(),
                    h.sum_ns
                )
                .unwrap();
                writeln!(
                    out,
                    "regent_{}_count{{shard=\"{label}\"}} {}",
                    t.name(),
                    h.count
                )
                .unwrap();
            }
        }
        out
    }
}

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline per the text-exposition spec.
pub fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One thread's private recording handle (see [`MetricsRegistry`]).
/// All methods are no-ops when collection is disabled.
pub struct MetricsHandle {
    enabled: bool,
    label: String,
    epoch: Instant,
    set: Box<MetricSet>,
    registry: &'static MetricsRegistry,
}

impl MetricsHandle {
    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increments `c` by one.
    pub fn incr(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Increments `c` by `by`.
    pub fn add(&mut self, c: Counter, by: u64) {
        if self.enabled && by > 0 {
            self.set.counters[c.index()] += by;
        }
    }

    /// An opaque start stamp for [`MetricsHandle::record_since`]
    /// (0 — no clock read — when disabled).
    pub fn start(&self) -> u64 {
        if self.enabled {
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Records the elapsed time since `t0` (from
    /// [`MetricsHandle::start`]) into `t`.
    pub fn record_since(&mut self, t0: u64, t: Timer) {
        if self.enabled {
            let now = self.epoch.elapsed().as_nanos() as u64;
            self.set.timers[t.index()].record(now.saturating_sub(t0));
        }
    }

    /// An opaque thread-CPU-time start stamp for
    /// [`MetricsHandle::record_cpu_since`] (0 — no clock read — when
    /// disabled). Use for short sections whose measurement must not
    /// absorb a preemption gap; see [`thread_cpu_ns`].
    pub fn start_cpu(&self) -> u64 {
        if self.enabled {
            thread_cpu_ns()
        } else {
            0
        }
    }

    /// Records the thread-CPU time since `t0` (from
    /// [`MetricsHandle::start_cpu`]) into `t`.
    pub fn record_cpu_since(&mut self, t0: u64, t: Timer) {
        if self.enabled {
            let now = thread_cpu_ns();
            self.set.timers[t.index()].record(now.saturating_sub(t0));
        }
    }

    /// Records an externally measured duration into `t`.
    pub fn record_ns(&mut self, t: Timer, ns: u64) {
        if self.enabled {
            self.set.timers[t.index()].record(ns);
        }
    }

    /// Merges the buffered set into the registry now and resets the
    /// buffer. Long-lived handles (service worker threads) call this
    /// at job boundaries so mid-run scrapes see fresh counters; the
    /// implicit merge on drop only covers handles that die promptly.
    pub fn flush(&mut self) {
        if self.enabled {
            self.registry.absorb(&self.label, &self.set);
            *self.set = MetricSet::default();
        }
    }
}

impl Drop for MetricsHandle {
    fn drop(&mut self) {
        if self.enabled {
            self.registry.absorb(&self.label, &self.set);
        }
    }
}

/// Writes the global registry to the path named by the
/// `REGENT_METRICS` environment variable — JSON at `<path>`,
/// Prometheus text at `<path>.prom`. Called by every executor at
/// shutdown; a missing variable (or disabled collection) makes this a
/// no-op. Write failures are reported to stderr, never fatal.
pub fn export_env() {
    let registry = global();
    if !registry.is_enabled() {
        return;
    }
    let Some(path) = std::env::var_os("REGENT_METRICS") else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    if let Err(e) = std::fs::write(&path, registry.to_json()) {
        eprintln!("REGENT_METRICS: cannot write {}: {e}", path.display());
    }
    let mut prom = path.as_os_str().to_owned();
    prom.push(".prom");
    if let Err(e) = std::fs::write(&prom, registry.to_prometheus()) {
        eprintln!(
            "REGENT_METRICS: cannot write {}: {e}",
            prom.to_string_lossy()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_means() {
        let mut h = Hist::default();
        h.record(0);
        h.record(1);
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        assert_eq!(h.count, 4);
        assert_eq!(h.sum_ns, 2048);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.mean_ns(), 512.0);
        let mut g = Hist::default();
        g.merge(&h);
        g.merge(&h);
        assert_eq!(g.count, 8);
        assert_eq!(g.buckets[0], 4);
    }

    #[test]
    fn handles_merge_into_registry_and_export() {
        let registry = global();
        if !registry.is_enabled() {
            return; // REGENT_METRICS_OFF set for this test process
        }
        registry.reset();
        {
            let mut h = registry.handle("test-shard-0");
            h.incr(Counter::Launches);
            h.add(Counter::Retransmits, 3);
            h.record_ns(Timer::TaskRunNs, 500);
            let mut h2 = registry.handle("test-shard-1");
            h2.incr(Counter::Launches);
            let t0 = h2.start();
            h2.record_since(t0, Timer::CopyWaitNs);
        }
        let total = registry.aggregate();
        assert_eq!(total.get(Counter::Launches), 2);
        assert_eq!(total.get(Counter::Retransmits), 3);
        assert_eq!(total.timer(Timer::TaskRunNs).count, 1);
        assert_eq!(total.timer(Timer::CopyWaitNs).count, 1);

        let json = registry.to_json();
        let v = regent_trace::json::parse(&json).expect("metrics JSON must parse");
        assert_eq!(
            v.get("total")
                .unwrap()
                .get("counters")
                .unwrap()
                .get("launches")
                .unwrap()
                .as_num(),
            Some(2.0)
        );
        let prom = registry.to_prometheus();
        assert!(prom.contains("regent_launches_total{shard=\"test-shard-0\"} 1"));
        assert!(prom.contains("regent_task_run_ns_bucket"));
        assert!(prom.contains("le=\"+Inf\""));

        let flat = registry.snapshot_flat();
        assert!(flat.iter().any(|(n, v)| n == "launches" && *v == 2.0));
        registry.reset();
        assert!(registry.aggregate().is_empty());
    }

    #[test]
    fn flush_publishes_midlife_and_never_double_counts() {
        let registry = global();
        if !registry.is_enabled() {
            return; // REGENT_METRICS_OFF set for this test process
        }
        // Unique label: no reset(), so this cannot race other tests
        // that share the global registry.
        let label = "test-flush-worker";
        let mut h = registry.handle(label);
        h.add(Counter::JobsAdmitted, 2);
        h.flush();
        let mid = |reg: &MetricsRegistry| {
            reg.per_label()
                .into_iter()
                .find(|(l, _)| l == label)
                .map(|(_, s)| s.get(Counter::JobsAdmitted))
                .unwrap_or(0)
        };
        // Visible to a scrape while the handle is still alive...
        assert_eq!(mid(registry), 2);
        h.incr(Counter::JobsAdmitted);
        drop(h); // ...and the drop-merge only adds the post-flush tail.
        assert_eq!(mid(registry), 3);
    }

    #[test]
    fn hist_quantiles_interpolate_and_saturate() {
        let mut h = Hist::default();
        for _ in 0..99 {
            h.record(1000); // bucket 9: [512, 1024)
        }
        h.record(1 << 62); // overflow bucket
        let p50 = h.quantile_ns(0.5);
        assert!((512.0..1024.0).contains(&p50), "p50 = {p50}");
        // The tail quantile lands in the overflow bucket and must
        // saturate at its lower bound, not invent an upper bound.
        assert_eq!(h.quantile_ns(0.999), (1u128 << (HIST_BUCKETS - 1)) as f64);
        assert_eq!(Hist::default().quantile_ns(0.5), 0.0);
    }

    #[test]
    fn prometheus_exposition_is_spec_compliant() {
        // Golden-output check for one counter family and one histogram
        // family. Uses a private registry so parallel tests touching
        // the global one cannot perturb the golden text.
        let registry = MetricsRegistry {
            enabled: true,
            store: Mutex::new(BTreeMap::new()),
        };
        let mut set = MetricSet::default();
        set.counters[Counter::JobsAdmitted.index()] = 1;
        set.timers[Timer::QueueWaitNs.index()].record(700); // bucket 9
        set.timers[Timer::QueueWaitNs.index()].record(1 << 62); // overflow bucket
        registry.absorb("tenant-1/quote\"back\\slash", &set);
        let prom = registry.to_prometheus();
        let expected = "\
# HELP regent_jobs_admitted_total Jobs admitted into a service shard pool
# TYPE regent_jobs_admitted_total counter
regent_jobs_admitted_total{shard=\"tenant-1/quote\\\"back\\\\slash\"} 1
# HELP regent_queue_wait_ns Time a job waited in the service admission queue (ns)
# TYPE regent_queue_wait_ns histogram
regent_queue_wait_ns_bucket{shard=\"tenant-1/quote\\\"back\\\\slash\",le=\"1024\"} 1
regent_queue_wait_ns_bucket{shard=\"tenant-1/quote\\\"back\\\\slash\",le=\"+Inf\"} 2
regent_queue_wait_ns_sum{shard=\"tenant-1/quote\\\"back\\\\slash\"} 4611686018427388604
regent_queue_wait_ns_count{shard=\"tenant-1/quote\\\"back\\\\slash\"} 2
";
        assert_eq!(prom, expected);
        // Overflow samples must never appear under a finite le bound.
        assert!(!prom.contains(&format!("le=\"{}\"", 1u128 << HIST_BUCKETS)));
    }

    #[test]
    fn prom_escape_handles_specials() {
        assert_eq!(prom_escape("plain"), "plain");
        assert_eq!(prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn disabled_handle_records_nothing() {
        // A handle constructed with collection off must not touch the
        // clock or the store.
        let registry = global();
        registry.reset();
        let mut h = MetricsHandle {
            enabled: false,
            label: "off".into(),
            epoch: Instant::now(),
            set: Box::default(),
            registry,
        };
        h.incr(Counter::Launches);
        assert_eq!(h.start(), 0);
        h.record_since(0, Timer::TaskRunNs);
        drop(h);
        assert!(!registry.per_label().iter().any(|(label, _)| label == "off"));
    }
}
