//! The append-only, epoch-segmented launch log behind the shared-log
//! executor (`log_exec`), with **flat combining** in the style of
//! node-replication's NUMA operation log.
//!
//! ## Combining protocol
//!
//! Producers never touch the log directly. Each producer owns a
//! *publication slot* ([`LaunchLog::submit`] is a push under a
//! per-slot lock, never contended between producers); whoever calls
//! [`LaunchLog::combine`] becomes the **combiner**: it drains every
//! slot in slot order into one batch, appends the batch, bumps the
//! published count, and wakes the consumers. Today the single
//! sequencer is both the only producer and the only combiner (it
//! combines once per epoch segment); the API is shaped for multiple
//! client producers — a job-queue front-end submits into its own slot
//! and any submitter may combine.
//!
//! ## Epoch segmentation
//!
//! Every batch carries the epoch it belongs to, and the first batch of
//! an outermost-loop iteration carries `step = Some(it)` — the marker
//! consumers use for checkpoint/rollback boundaries and `StepBegin`
//! trace events. A combine may split its drained records into several
//! batches when a [`LaunchLog::new`] record limit (`REGENT_LOG_BATCH`)
//! is set; only the first split carries the step marker.
//!
//! ## Consumption
//!
//! Consumers tail the log with a [`LogCursor`]: the published-batch
//! count is a plain atomic, so lag polling is lock-free; the blocking
//! [`LaunchLog::wait`] takes the log mutex only when the cursor has
//! caught up. Batches are immutable once published (`Arc`-shared), so
//! a cursor can be rewound — which is exactly how the shared-log
//! executor replays after a rollback.

use crate::collective::hang_timeout;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One published batch of log records. Immutable after publication.
#[derive(Debug)]
pub struct Batch<T> {
    /// Position of this batch in the log (the consumer cursor value
    /// that reaches it).
    pub index: usize,
    /// The epoch (outermost-loop iteration counter) the records belong
    /// to.
    pub epoch: u64,
    /// `Some(it)` when this batch begins outermost-loop iteration
    /// `it` — the epoch-boundary marker consumers synchronize
    /// checkpoints and `StepBegin` events on.
    pub step: Option<u64>,
    /// Number of producer slots that contributed records.
    pub combined_from: usize,
    /// The records, in slot order then per-slot submission order.
    pub records: Vec<T>,
}

struct LogInner<T> {
    batches: Vec<Arc<Batch<T>>>,
    sealed: bool,
}

/// The shared launch log. See the module docs for the protocol.
pub struct LaunchLog<T> {
    /// Per-producer publication slots.
    slots: Vec<Mutex<Vec<T>>>,
    /// Combiner exclusion: at most one thread drains the slots and
    /// appends at a time.
    combine: Mutex<()>,
    inner: Mutex<LogInner<T>>,
    cv: Condvar,
    /// Published batch count, readable without the log mutex (the
    /// lock-free side of the consumer cursor).
    published: AtomicUsize,
    /// Maximum records per published batch (`usize::MAX` ⇒ unlimited).
    max_batch: usize,
}

impl<T> LaunchLog<T> {
    /// A log with `producers` publication slots and at most `max_batch`
    /// records per published batch (0 is treated as unlimited).
    pub fn new(producers: usize, max_batch: usize) -> LaunchLog<T> {
        assert!(
            producers > 0,
            "a launch log needs at least one producer slot"
        );
        LaunchLog {
            slots: (0..producers).map(|_| Mutex::new(Vec::new())).collect(),
            combine: Mutex::new(()),
            inner: Mutex::new(LogInner {
                batches: Vec::new(),
                sealed: false,
            }),
            cv: Condvar::new(),
            published: AtomicUsize::new(0),
            max_batch: if max_batch == 0 {
                usize::MAX
            } else {
                max_batch
            },
        }
    }

    /// Hands one operation to the combiner by pushing it into the
    /// producer's publication slot. Nothing is visible to consumers
    /// until a [`LaunchLog::combine`] publishes it.
    pub fn submit(&self, producer: usize, op: T) {
        self.slots[producer]
            .lock()
            .expect("launch-log slot lock poisoned")
            .push(op);
    }

    /// Records currently pending (submitted, not yet combined) in one
    /// producer's slot.
    pub fn pending(&self, producer: usize) -> usize {
        self.slots[producer]
            .lock()
            .expect("launch-log slot lock poisoned")
            .len()
    }

    /// The flat-combining step: drains every publication slot in slot
    /// order into one batch tagged (`epoch`, `step`), appends it
    /// (split into several batches when the record limit demands; only
    /// the first carries `step`), and wakes consumers. An empty
    /// combine publishes nothing — unless `step` is set, in which case
    /// an empty *boundary* batch is still published so consumers see
    /// every epoch boundary. Returns the number of records combined.
    pub fn combine(&self, epoch: u64, step: Option<u64>) -> usize {
        let _combiner = self
            .combine
            .lock()
            .expect("launch-log combiner lock poisoned");
        let mut drained: Vec<T> = Vec::new();
        let mut combined_from = 0usize;
        for slot in &self.slots {
            let mut s = slot.lock().expect("launch-log slot lock poisoned");
            if !s.is_empty() {
                combined_from += 1;
                drained.append(&mut s);
            }
        }
        let n = drained.len();
        if n == 0 && step.is_none() {
            return 0;
        }
        let mut inner = self.inner.lock().expect("launch-log lock poisoned");
        assert!(!inner.sealed, "combine on a sealed launch log");
        let mut step = step;
        loop {
            let take = drained.len().min(self.max_batch);
            let rest = drained.split_off(take);
            let index = inner.batches.len();
            inner.batches.push(Arc::new(Batch {
                index,
                epoch,
                step: step.take(),
                combined_from,
                records: drained,
            }));
            drained = rest;
            if drained.is_empty() {
                break;
            }
        }
        self.published.store(inner.batches.len(), Ordering::Release);
        self.cv.notify_all();
        n
    }

    /// Number of published batches (lock-free).
    pub fn published(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// The batch at `index` if already published (non-blocking).
    pub fn get(&self, index: usize) -> Option<Arc<Batch<T>>> {
        let inner = self.inner.lock().expect("launch-log lock poisoned");
        inner.batches.get(index).map(Arc::clone)
    }

    /// Blocks until the batch at `index` is published and returns it,
    /// or returns `None` once the log is sealed with fewer batches.
    /// Panics (a likely-deadlock diagnostic) after the global hang
    /// timeout, like every other blocking wait in the runtime.
    pub fn wait(&self, index: usize) -> Option<Arc<Batch<T>>> {
        let mut inner = self.inner.lock().expect("launch-log lock poisoned");
        loop {
            if let Some(b) = inner.batches.get(index) {
                return Some(Arc::clone(b));
            }
            if inner.sealed {
                return None;
            }
            let (guard, timeout) = self
                .cv
                .wait_timeout(inner, hang_timeout())
                .expect("launch-log lock poisoned");
            inner = guard;
            if timeout.timed_out() && inner.batches.get(index).is_none() && !inner.sealed {
                panic!(
                    "likely deadlock: log consumer waited {:?} for batch {index} \
                     (sequencer stalled or died without sealing)",
                    hang_timeout()
                );
            }
        }
    }

    /// Seals the log: no further batches will be published, and every
    /// consumer blocked past the end wakes with `None`. Idempotent.
    pub fn seal(&self) {
        let mut inner = self.inner.lock().expect("launch-log lock poisoned");
        inner.sealed = true;
        self.cv.notify_all();
    }

    /// Whether the log is sealed.
    pub fn is_sealed(&self) -> bool {
        self.inner.lock().expect("launch-log lock poisoned").sealed
    }
}

/// A consumer's read position in the log. Plain data — rewinding it is
/// how post-rollback replay re-consumes published batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogCursor {
    /// Index of the next batch to consume.
    pub next: usize,
}

impl LogCursor {
    /// A cursor at the beginning of the log.
    pub fn new() -> LogCursor {
        LogCursor::default()
    }

    /// How many published batches this cursor has not consumed yet
    /// (lock-free: one atomic load).
    pub fn lag<T>(&self, log: &LaunchLog<T>) -> usize {
        log.published().saturating_sub(self.next)
    }

    /// Takes the next batch, blocking until it is published; `None`
    /// once the log is sealed and fully consumed.
    pub fn take<T>(&mut self, log: &LaunchLog<T>) -> Option<Arc<Batch<T>>> {
        let b = log.wait(self.next)?;
        self.next += 1;
        Some(b)
    }

    /// Rewinds the cursor to batch `to` (post-rollback replay).
    pub fn rewind(&mut self, to: usize) {
        self.next = to;
    }
}

/// Replica count for the shared-log executor: `REGENT_LOG_REPLICAS`,
/// clamped to `[1, num_shards]`; default `min(2, num_shards)` — two
/// simulated NUMA domains unless the run is single-shard.
pub fn replicas_from_env(num_shards: usize) -> usize {
    let default = 2.min(num_shards.max(1));
    match std::env::var("REGENT_LOG_REPLICAS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.min(num_shards.max(1)),
            _ => default,
        },
        Err(_) => default,
    }
}

/// Per-batch record limit for the shared-log executor:
/// `REGENT_LOG_BATCH` (0 or unset ⇒ unlimited — one batch per epoch
/// segment).
pub fn batch_limit_from_env() -> usize {
    match std::env::var("REGENT_LOG_BATCH") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(0),
        Err(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn combine_publishes_in_slot_then_submission_order() {
        let log: LaunchLog<u32> = LaunchLog::new(3, 0);
        log.submit(2, 20);
        log.submit(0, 1);
        log.submit(2, 21);
        log.submit(0, 2);
        let n = log.combine(0, None);
        assert_eq!(n, 4);
        let b = log.get(0).unwrap();
        assert_eq!(b.records, vec![1, 2, 20, 21]);
        assert_eq!(b.combined_from, 2, "slot 1 contributed nothing");
        assert_eq!(b.epoch, 0);
        assert_eq!(b.step, None);
    }

    #[test]
    fn batch_limit_splits_with_step_on_first_only() {
        let log: LaunchLog<u32> = LaunchLog::new(1, 2);
        for i in 0..5 {
            log.submit(0, i);
        }
        assert_eq!(log.combine(7, Some(3)), 5);
        assert_eq!(log.published(), 3);
        let b0 = log.get(0).unwrap();
        let b1 = log.get(1).unwrap();
        let b2 = log.get(2).unwrap();
        assert_eq!(b0.records, vec![0, 1]);
        assert_eq!(b1.records, vec![2, 3]);
        assert_eq!(b2.records, vec![4]);
        assert_eq!(b0.step, Some(3), "boundary marker on the first split");
        assert_eq!(b1.step, None);
        assert_eq!(b2.step, None);
        assert!(
            [b0, b1, b2].iter().all(|b| b.epoch == 7),
            "every split carries the segment's epoch"
        );
    }

    #[test]
    fn empty_combine_publishes_only_boundary_batches() {
        let log: LaunchLog<u32> = LaunchLog::new(1, 0);
        assert_eq!(log.combine(0, None), 0);
        assert_eq!(log.published(), 0, "empty non-boundary combine is a no-op");
        assert_eq!(log.combine(4, Some(4)), 0);
        assert_eq!(log.published(), 1, "empty boundary batch still published");
        let b = log.get(0).unwrap();
        assert!(b.records.is_empty());
        assert_eq!(b.step, Some(4));
        assert_eq!(b.epoch, 4);
    }

    #[test]
    fn cursor_lag_accounting() {
        let log: LaunchLog<u32> = LaunchLog::new(1, 1);
        let mut cursor = LogCursor::new();
        assert_eq!(cursor.lag(&log), 0);
        for i in 0..3 {
            log.submit(0, i);
        }
        log.combine(0, None); // 3 batches at limit 1
        assert_eq!(cursor.lag(&log), 3);
        assert_eq!(cursor.take(&log).unwrap().records, vec![0]);
        assert_eq!(cursor.lag(&log), 2);
        cursor.rewind(0);
        assert_eq!(cursor.lag(&log), 3, "rewound cursor sees the lag again");
    }

    #[test]
    fn sealed_log_drains_then_ends() {
        let log: LaunchLog<u32> = LaunchLog::new(1, 0);
        log.submit(0, 9);
        log.combine(0, None);
        log.seal();
        log.seal(); // idempotent
        let mut cursor = LogCursor::new();
        assert_eq!(cursor.take(&log).unwrap().records, vec![9]);
        assert!(cursor.take(&log).is_none());
    }

    #[test]
    fn combiner_handoff_under_slow_consumer() {
        // The combiner must never block on a lagging consumer: the log
        // is unbounded, so a slow tail only grows the cursor lag.
        const ROUNDS: u32 = 50;
        let log: LaunchLog<u32> = LaunchLog::new(2, 0);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut cursor = LogCursor::new();
                let mut seen: Vec<u32> = Vec::new();
                let mut max_lag = 0usize;
                while let Some(b) = cursor.take(&log) {
                    max_lag = max_lag.max(cursor.lag(&log) + 1);
                    // Deliberately slower than the producer.
                    std::thread::sleep(Duration::from_micros(200));
                    seen.extend(&b.records);
                }
                (seen, max_lag)
            });
            for round in 0..ROUNDS {
                log.submit((round % 2) as usize, round);
                log.combine(u64::from(round), None);
            }
            done.store(true, Ordering::Release);
            log.seal();
            let (seen, max_lag) = consumer.join().expect("consumer panicked");
            assert!(done.load(Ordering::Acquire));
            assert_eq!(seen, (0..ROUNDS).collect::<Vec<u32>>());
            assert!(
                max_lag >= 2,
                "the producer never ran ahead of the slow consumer (lag {max_lag})"
            );
        });
    }

    #[test]
    fn wait_blocks_until_published() {
        let log: LaunchLog<u32> = LaunchLog::new(1, 0);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| log.wait(0).map(|b| b.records.clone()));
            std::thread::sleep(Duration::from_millis(5));
            log.submit(0, 42);
            log.combine(0, None);
            assert_eq!(waiter.join().unwrap(), Some(vec![42]));
        });
    }

    #[test]
    fn env_var_parsing() {
        // Defaults (the vars are not set in the test environment).
        assert_eq!(replicas_from_env(1), 1);
        assert_eq!(replicas_from_env(2), 2);
        assert_eq!(replicas_from_env(8), 2);
        assert_eq!(batch_limit_from_env(), 0);
    }
}
