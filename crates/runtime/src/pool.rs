//! Buffer pooling for the exchange data plane.
//!
//! Every copy message used to carry freshly allocated `Vec`s and every
//! checkpoint boundary cloned the whole instance map; in steady state
//! both allocate the same shapes over and over. [`ChunkPool`] is a
//! per-shard freelist (shard threads are single-threaded, so no locks)
//! the consumer side feeds with drained payload buffers and the
//! producer side draws from; the snapshot helpers reuse the previous
//! snapshot's allocations via `Instance::clone_contents_from`.
//!
//! Lifecycle of a pooled payload buffer:
//!
//! 1. producer: [`ChunkPool::take_f64`]/[`ChunkPool::take_i64`] pops a
//!    recycled buffer (or allocates on a miss) and fills it by gather;
//! 2. the buffer travels inside a `CopyMsg` through the ring;
//! 3. consumer: after `apply` (or after discarding a corrupted frame)
//!    the buffer goes back via [`ChunkPool::put_f64`]/
//!    [`ChunkPool::put_i64`] — into the *consumer's* pool; halo
//!    traffic is symmetric, so producer and consumer pools balance.
//!
//! A recycled buffer is always `clear()`ed, so contents are
//! bit-identical to a fresh allocation path by construction (the
//! `ring_props` suite pins this).

use crate::plan::InstKey;
use regent_region::Instance;
use std::collections::HashMap;

/// Bound on retained buffers per element kind: enough for every
/// in-flight pair of a wide mesh, small enough that a pathological
/// statement can't pin unbounded memory.
const POOL_RETAIN: usize = 64;

/// A per-shard freelist of exchange payload buffers.
#[derive(Debug, Default)]
pub struct ChunkPool {
    f64s: Vec<Vec<f64>>,
    i64s: Vec<Vec<i64>>,
    reuses: u64,
    allocs: u64,
}

impl ChunkPool {
    /// An empty pool.
    pub fn new() -> Self {
        ChunkPool::default()
    }

    /// An empty `Vec<f64>` with room for `capacity` elements, recycled
    /// when possible.
    pub fn take_f64(&mut self, capacity: usize) -> Vec<f64> {
        match self.f64s.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.reserve(capacity);
                v
            }
            None => {
                self.allocs += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    /// An empty `Vec<i64>` with room for `capacity` elements, recycled
    /// when possible.
    pub fn take_i64(&mut self, capacity: usize) -> Vec<i64> {
        match self.i64s.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.reserve(capacity);
                v
            }
            None => {
                self.allocs += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a drained f64 buffer to the pool (cleared; dropped when
    /// the pool is at its retention bound).
    pub fn put_f64(&mut self, mut v: Vec<f64>) {
        if self.f64s.len() < POOL_RETAIN {
            v.clear();
            self.f64s.push(v);
        }
    }

    /// Returns a drained i64 buffer to the pool.
    pub fn put_i64(&mut self, mut v: Vec<i64>) {
        if self.i64s.len() < POOL_RETAIN {
            v.clear();
            self.i64s.push(v);
        }
    }

    /// Buffers served from the freelist so far.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Buffers that had to be freshly allocated.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }
}

/// Clones `src` into `dst` reusing `dst`'s existing allocations: the
/// per-key instances are `clone_contents_from`'d in place. Contract:
/// when a key exists in both maps, the two instances have the same
/// shape (the executors' key sets and instance shapes are static per
/// shard). Stale keys are handled defensively by falling back to a
/// fresh clone of the whole map.
pub(crate) fn clone_insts_into(
    src: &HashMap<InstKey, Instance>,
    dst: &mut HashMap<InstKey, Instance>,
) {
    if dst.len() != src.len() {
        dst.clear();
        dst.extend(src.iter().map(|(k, v)| (*k, v.clone())));
        return;
    }
    for (k, v) in src {
        match dst.get_mut(k) {
            Some(d) => d.clone_contents_from(v),
            None => {
                dst.insert(*k, v.clone());
            }
        }
    }
}
