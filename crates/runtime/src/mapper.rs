//! The mapping interface (§4.2).
//!
//! "All tasks in Regent, including shard tasks, are processed through
//! the Legion mapping interface. This interface allows the user to
//! define a mapper that controls the assignment of tasks to physical
//! processors. ... The techniques described in this paper are agnostic
//! to the mapping used." — the implicit executor routes every point
//! task through a [`Mapper`]; the test suite exercises adversarial
//! mappers to check that mapping never changes results, only
//! performance.

use regent_geometry::DynPoint;
use regent_ir::TaskId;

/// Decides which worker executes a point task.
pub trait Mapper: Send + Sync {
    /// Chooses a worker in `0..num_workers` for the given task point.
    fn map_task(&self, task: TaskId, point: DynPoint, num_workers: usize) -> usize;
}

/// The default mapper: spreads launch points round-robin by their
/// first coordinate ("a typical strategy is to ... distribute the
/// tasks ... among the processors", §4.2).
#[derive(Default, Clone, Copy, Debug)]
pub struct DefaultMapper;

impl Mapper for DefaultMapper {
    fn map_task(&self, _task: TaskId, point: DynPoint, num_workers: usize) -> usize {
        (point.coord(0).rem_euclid(num_workers as i64)) as usize
    }
}

/// An adversarial mapper that serializes everything onto one worker —
/// pathological for performance, required to be harmless for
/// correctness.
#[derive(Default, Clone, Copy, Debug)]
pub struct SingleWorkerMapper;

impl Mapper for SingleWorkerMapper {
    fn map_task(&self, _task: TaskId, _point: DynPoint, _num_workers: usize) -> usize {
        0
    }
}

/// A mapper keyed on the task id — all points of one task type land on
/// the same worker (a "specialized processor" policy).
#[derive(Default, Clone, Copy, Debug)]
pub struct TaskKindMapper;

impl Mapper for TaskKindMapper {
    fn map_task(&self, task: TaskId, _point: DynPoint, num_workers: usize) -> usize {
        task.0 as usize % num_workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spreads_points() {
        let m = DefaultMapper;
        let assignments: Vec<usize> = (0..8)
            .map(|i| m.map_task(TaskId(0), DynPoint::from(i), 4))
            .collect();
        assert_eq!(assignments, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // Negative coordinates still map in range.
        assert!(m.map_task(TaskId(0), DynPoint::from(-3), 4) < 4);
    }

    #[test]
    fn single_worker_is_constant() {
        let m = SingleWorkerMapper;
        for i in 0..10 {
            assert_eq!(m.map_task(TaskId(1), DynPoint::from(i), 8), 0);
        }
    }

    #[test]
    fn task_kind_groups_by_task() {
        let m = TaskKindMapper;
        assert_eq!(m.map_task(TaskId(0), DynPoint::from(5), 3), 0);
        assert_eq!(m.map_task(TaskId(1), DynPoint::from(5), 3), 1);
        assert_eq!(m.map_task(TaskId(4), DynPoint::from(5), 3), 1);
    }
}
