//! The implicitly parallel executor — the non-control-replicated
//! baseline ("Regent w/o CR" in Figures 6–9).
//!
//! A single control thread walks the program in issue order, performs
//! dynamic dependence analysis for every point task against the window
//! of in-flight tasks (the Legion model of §4.1: "Legion discovers
//! parallelism between tasks by computing a dynamic dependence graph
//! over the tasks in an executing program"), and hands ready tasks to a
//! worker pool. Two tasks conflict when they touch possibly-overlapping
//! regions with incompatible privileges; the analysis first consults
//! the region tree (cheap, static) and falls back to exact domain
//! overlap.
//!
//! This is precisely the architecture whose *per-task control overhead*
//! grows with the machine: the control thread does O(N) analysis work
//! per time step. The executor counts that work
//! ([`ImplicitStats::dependence_checks`]) so the machine model in
//! `regent-machine` can charge it when projecting to large node counts,
//! and — when [`ImplicitOptions::tracer`] is enabled — records every
//! launch, analysis span, dependence edge, and kernel run as structured
//! events for the `regent-trace` consumers.
//!
//! Reduction privileges are serialized against each other here (rather
//! than staged through temporaries), which keeps fold order identical
//! to program order — executions are bit-identical to the sequential
//! interpreter, which the test suite exploits.

use crate::mapper::{DefaultMapper, Mapper};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{interp::resolve_arg, ArgSlot, Privilege, Program, Stmt, Store, TaskCtx, TaskId};
use regent_region::{Instance, RegionId};
use regent_trace::{fields_mask, EventKind, PrivCode, TraceBuf, Tracer};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// Options for the implicit executor.
#[derive(Clone)]
pub struct ImplicitOptions {
    /// Worker threads executing ready tasks.
    pub num_workers: usize,
    /// The mapping policy assigning point tasks to workers (§4.2).
    pub mapper: Arc<dyn Mapper>,
    /// Event recorder; [`Tracer::disabled`] makes recording free.
    pub tracer: Arc<Tracer>,
}

impl ImplicitOptions {
    /// `num_workers` workers with the default round-robin mapper and
    /// tracing off.
    pub fn with_workers(num_workers: usize) -> Self {
        ImplicitOptions {
            num_workers,
            mapper: Arc::new(DefaultMapper),
            tracer: Tracer::disabled(),
        }
    }
}

impl Default for ImplicitOptions {
    fn default() -> Self {
        ImplicitOptions::with_workers(4)
    }
}

/// Statistics from an implicit execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ImplicitStats {
    /// Point tasks launched.
    pub tasks_launched: u64,
    /// Pairwise dependence checks performed by the control thread —
    /// the dynamic-analysis work that makes single-control-thread
    /// execution stop scaling (§1).
    pub dependence_checks: u64,
    /// Dependence edges recorded.
    pub dependence_edges: u64,
    /// Peak size of the in-flight task window.
    pub max_window: usize,
}

/// Raw instance pointer made sendable; exclusivity is guaranteed by the
/// dependence analysis (conflicting tasks are ordered by edges).
struct InstPtr(*mut Instance);
unsafe impl Send for InstPtr {}
unsafe impl Sync for InstPtr {}

struct JobArg {
    domain: Domain,
    privilege: Privilege,
    fields: Vec<regent_region::FieldId>,
    inst: InstPtr,
}

struct Job {
    task: TaskId,
    args: Vec<JobArg>,
    scalars: Vec<f64>,
    point: DynPoint,
    /// Dynamic launch sequence number (trace identity).
    launch: u32,
    /// Position in the launch domain (trace identity).
    pos: u32,
    /// Worker chosen by the mapper (§4.2).
    worker: usize,
    ret: Mutex<Option<f64>>,
    /// Dependencies not yet satisfied; the job is ready at zero.
    remaining: AtomicUsize,
    /// Jobs to notify on completion. Guarded together with `done`.
    dependents: Mutex<Vec<Arc<Job>>>,
    done: AtomicBool,
}

struct Pool {
    /// One ready queue per worker; the mapper picks the queue.
    ready_tx: Vec<Sender<Option<Arc<Job>>>>,
    outstanding: Mutex<usize>,
    drained: Condvar,
}

impl Pool {
    fn submit(&self, job: Arc<Job>) {
        let w = job.worker;
        self.ready_tx[w].send(Some(job)).unwrap();
    }

    fn complete_one(&self) {
        let mut n = self.outstanding.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    fn register(&self) {
        *self.outstanding.lock().unwrap() += 1;
    }

    fn wait_drained(&self) {
        let mut n = self.outstanding.lock().unwrap();
        while *n > 0 {
            let (guard, timeout) = self
                .drained
                .wait_timeout(n, crate::collective::hang_timeout())
                .unwrap();
            n = guard;
            if timeout.timed_out() && *n > 0 {
                panic!(
                    "likely deadlock: control thread waited {:?} for the worker pool to drain ({} tasks still outstanding)",
                    crate::collective::hang_timeout(),
                    *n
                );
            }
        }
    }
}

fn run_job(job: &Job, tasks: &[regent_ir::TaskDecl], pool: &Pool, tb: &mut TraceBuf) {
    let decl = &tasks[job.task.0 as usize];
    let mut slots: Vec<ArgSlot> = job
        .args
        .iter()
        .map(|a| {
            // SAFETY: the dependence graph orders all conflicting
            // accesses; compatible concurrent accesses are read-read
            // (or serialized reductions), so constructing aliasing
            // slots here is race-free.
            unsafe { ArgSlot::new(a.domain.clone(), a.privilege, a.fields.clone(), a.inst.0) }
        })
        .collect();
    let mut ctx = TaskCtx::new(&mut slots, &job.scalars, job.point);
    let t0 = tb.now();
    (decl.kernel)(&mut ctx);
    tb.span_since(
        t0,
        EventKind::TaskRun {
            launch: job.launch,
            pos: job.pos,
            task: job.task.0,
        },
    );
    *job.ret.lock().unwrap() = ctx.return_value;
    // Mark done and release dependents under the lock so late
    // edge-additions observe a consistent state.
    let deps = {
        let mut d = job.dependents.lock().unwrap();
        job.done.store(true, Ordering::SeqCst);
        std::mem::take(&mut *d)
    };
    for dep in deps {
        if dep.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            pool.submit(dep);
        }
    }
    pool.complete_one();
}

/// A window record: a task's region accesses and its job handle.
type WindowRecord = (Vec<(RegionId, Privilege)>, Arc<Job>);

/// Control-thread state: the window of issued, possibly-incomplete
/// tasks.
struct Window {
    records: Vec<WindowRecord>,
}

impl Window {
    fn prune(&mut self) {
        self.records.retain(|(_, j)| !j.done.load(Ordering::SeqCst));
    }
}

/// Control-thread bookkeeping threaded through statement execution:
/// statistics, the event recorder, and the trace identity counters.
struct Ctl {
    stats: ImplicitStats,
    tb: TraceBuf,
    launch_seq: u32,
    loop_depth: u32,
}

impl Ctl {
    /// Emits the drain marker after the pool quiesced (a full barrier
    /// in the happens-before graph).
    fn drained(&mut self) {
        self.tb.instant(EventKind::Drain);
    }
}

/// Maps an IR privilege to its trace-event code (shared with the SPMD
/// executor so both logs speak the same access language).
pub(crate) fn priv_code(p: Privilege) -> PrivCode {
    match p {
        Privilege::Read => PrivCode::Read,
        Privilege::ReadWrite => PrivCode::Write,
        Privilege::Reduce(op) => PrivCode::Reduce(op as u8),
    }
}

/// Do two privileges require an ordering edge when their regions
/// overlap? Reductions are serialized (see module docs).
fn needs_edge(a: Privilege, b: Privilege) -> bool {
    !matches!((a, b), (Privilege::Read, Privilege::Read))
}

/// Executes a program with implicit parallelism, returning the final
/// scalar environment and statistics. Results are bit-identical to
/// [`regent_ir::interp::run`].
pub fn execute_implicit(
    program: &Program,
    store: &mut Store,
    opts: ImplicitOptions,
) -> (Vec<f64>, ImplicitStats) {
    assert!(opts.num_workers > 0);
    let mut env: Vec<f64> = program.scalars.iter().map(|s| s.init).collect();

    // Cache raw pointers to every root instance (the map is not
    // mutated while workers run).
    let roots = program.root_regions();
    let mut inst_ptrs: std::collections::HashMap<RegionId, InstPtr> =
        std::collections::HashMap::new();
    for r in roots {
        inst_ptrs.insert(r, InstPtr(store.instance_mut(program, r) as *mut Instance));
    }

    let mut senders = Vec::with_capacity(opts.num_workers);
    let mut receivers = Vec::with_capacity(opts.num_workers);
    for _ in 0..opts.num_workers {
        let (tx, rx) = channel::<Option<Arc<Job>>>();
        senders.push(tx);
        receivers.push(rx);
    }
    let pool = Pool {
        ready_tx: senders,
        outstanding: Mutex::new(0),
        drained: Condvar::new(),
    };

    let mut ctl = Ctl {
        stats: ImplicitStats::default(),
        tb: opts.tracer.buffer("control"),
        launch_seq: 0,
        loop_depth: 0,
    };

    std::thread::scope(|scope| {
        for (w, rx) in receivers.into_iter().enumerate() {
            let pool = &pool;
            let tasks = &program.tasks;
            let tracer = Arc::clone(&opts.tracer);
            scope.spawn(move || {
                let mut tb = tracer.buffer(&format!("worker-{w}"));
                // Bounded waits: a worker starved past the hang
                // timeout keeps polling (the control thread may just
                // be slow), but a disconnected channel or poison pill
                // ends the loop. The timeout exists so a worker stuck
                // on a job someone else deadlocked behind surfaces in
                // thread dumps at a known cadence rather than parking
                // forever in an unbounded recv().
                loop {
                    match rx.recv_timeout(crate::collective::hang_timeout()) {
                        Ok(Some(job)) => run_job(&job, tasks, pool, &mut tb),
                        Ok(None) => break,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
            });
        }

        let mut window = Window {
            records: Vec::new(),
        };
        let route = Route {
            mapper: Arc::clone(&opts.mapper),
            num_workers: opts.num_workers,
        };
        exec_stmts(
            program,
            &program.body,
            &mut env,
            &inst_ptrs,
            &pool,
            &route,
            &mut window,
            &mut ctl,
        );
        pool.wait_drained();
        ctl.drained();
        // Poison pills: one per worker so every thread exits recv().
        for tx in &pool.ready_tx {
            tx.send(None).unwrap();
        }
    });

    ctl.tb.flush();
    (env, ctl.stats)
}

/// The routing policy: which worker a point task lands on.
struct Route {
    mapper: Arc<dyn Mapper>,
    num_workers: usize,
}

#[allow(clippy::too_many_arguments)]
fn exec_stmts(
    program: &Program,
    stmts: &[Stmt],
    env: &mut Vec<f64>,
    inst_ptrs: &std::collections::HashMap<RegionId, InstPtr>,
    pool: &Pool,
    route: &Route,
    window: &mut Window,
    ctl: &mut Ctl,
) {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => {
                let decl = program.task(il.task);
                let scalar_args: Vec<f64> = il.scalar_args.iter().map(|e| e.eval(env)).collect();
                let launch_seq = ctl.launch_seq;
                ctl.launch_seq += 1;
                let mut launch_jobs: Vec<Arc<Job>> = Vec::new();
                for (pos, &i) in il.launch_domain.iter().enumerate() {
                    let regions: Vec<RegionId> =
                        il.args.iter().map(|a| resolve_arg(program, a, i)).collect();
                    let job = issue_task(
                        program,
                        il.task,
                        &regions,
                        scalar_args.clone(),
                        i,
                        (launch_seq, pos as u32),
                        inst_ptrs,
                        pool,
                        route,
                        window,
                        ctl,
                    );
                    launch_jobs.push(job);
                }
                if let Some((var, op)) = il.reduce_result {
                    // Scalar reduction: wait for the launch, fold returns
                    // in launch order (§4.4).
                    pool.wait_drained();
                    ctl.drained();
                    let mut acc: Option<f64> = None;
                    for j in &launch_jobs {
                        let v = j
                            .ret
                            .lock()
                            .unwrap()
                            .unwrap_or_else(|| panic!("task {} returned no value", decl.name));
                        acc = Some(match acc {
                            None => v,
                            Some(a) => op.fold(a, v),
                        });
                    }
                    env[var.0 as usize] = acc.unwrap_or_else(|| op.identity());
                    window.records.clear();
                }
            }
            Stmt::SingleLaunch(sl) => {
                let scalar_args: Vec<f64> = sl.scalar_args.iter().map(|e| e.eval(env)).collect();
                let launch_seq = ctl.launch_seq;
                ctl.launch_seq += 1;
                let job = issue_task(
                    program,
                    sl.task,
                    &sl.args,
                    scalar_args,
                    DynPoint::from(0),
                    (launch_seq, 0),
                    inst_ptrs,
                    pool,
                    route,
                    window,
                    ctl,
                );
                if let Some(var) = sl.result {
                    pool.wait_drained();
                    ctl.drained();
                    env[var.0 as usize] = job.ret.lock().unwrap().unwrap_or_else(|| {
                        panic!("task {} returned no value", program.task(sl.task).name)
                    });
                    window.records.clear();
                }
            }
            Stmt::For { count, body } => {
                let n = count.eval(env).max(0.0) as u64;
                for it in 0..n {
                    if ctl.loop_depth == 0 {
                        ctl.tb.instant(EventKind::StepBegin { step: it });
                    }
                    ctl.loop_depth += 1;
                    exec_stmts(program, body, env, inst_ptrs, pool, route, window, ctl);
                    ctl.loop_depth -= 1;
                }
            }
            Stmt::While { cond, body } => {
                let mut it = 0u64;
                while cond.eval(env) != 0.0 {
                    if ctl.loop_depth == 0 {
                        ctl.tb.instant(EventKind::StepBegin { step: it });
                    }
                    ctl.loop_depth += 1;
                    exec_stmts(program, body, env, inst_ptrs, pool, route, window, ctl);
                    ctl.loop_depth -= 1;
                    it += 1;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if cond.eval(env) != 0.0 {
                    exec_stmts(program, then_body, env, inst_ptrs, pool, route, window, ctl);
                } else {
                    exec_stmts(program, else_body, env, inst_ptrs, pool, route, window, ctl);
                }
            }
            Stmt::SetScalar { var, expr } => env[var.0 as usize] = expr.eval(env),
        }
    }
}

/// Issues one point task: dependence analysis against the window, then
/// submission (deferred-execution style — the control thread never
/// blocks on the task itself).
#[allow(clippy::too_many_arguments)]
fn issue_task(
    program: &Program,
    task: TaskId,
    regions: &[RegionId],
    scalars: Vec<f64>,
    point: DynPoint,
    (launch, pos): (u32, u32),
    inst_ptrs: &std::collections::HashMap<RegionId, InstPtr>,
    pool: &Pool,
    route: &Route,
    window: &mut Window,
    ctl: &mut Ctl,
) -> Arc<Job> {
    let decl = program.task(task);
    let accesses: Vec<(RegionId, Privilege)> = regions
        .iter()
        .zip(&decl.params)
        .map(|(&r, p)| (r, p.privilege))
        .collect();
    let args: Vec<JobArg> = regions
        .iter()
        .zip(&decl.params)
        .map(|(&r, p)| {
            let root = program.forest.root_of(r);
            JobArg {
                domain: program.forest.domain(r).clone(),
                privilege: p.privilege,
                fields: p.fields.clone(),
                inst: InstPtr(inst_ptrs[&root].0),
            }
        })
        .collect();
    ctl.tb.instant(EventKind::TaskLaunch {
        launch,
        pos,
        task: task.0,
    });
    if ctl.tb.is_enabled() {
        // One access event per region argument; the instance identity
        // is the root region (all implicit-executor tasks share root
        // instances).
        for (&(r, p), param) in accesses.iter().zip(&decl.params) {
            ctl.tb.instant(EventKind::TaskAccess {
                launch,
                pos,
                region: r.0,
                inst: program.forest.root_of(r).0 as u64,
                fields: fields_mask(param.fields.iter().map(|f| f.0)),
                privilege: priv_code(p),
            });
        }
    }
    // `remaining` starts at 1: a sentinel held by the control thread
    // while edges are being added, preventing a predecessor that
    // completes mid-analysis from submitting the job twice.
    let worker = route.mapper.map_task(task, point, route.num_workers);
    assert!(
        worker < route.num_workers,
        "mapper chose worker {worker} of {}",
        route.num_workers
    );
    let job = Arc::new(Job {
        task,
        args,
        scalars,
        point,
        launch,
        pos,
        worker,
        ret: Mutex::new(None),
        remaining: AtomicUsize::new(1),
        dependents: Mutex::new(Vec::new()),
        done: AtomicBool::new(false),
    });

    // Dependence analysis (the per-task control overhead).
    let analysis_start = ctl.tb.now();
    let checks_before = ctl.stats.dependence_checks;
    let mut n_deps = 0usize;
    for (prev_acc, prev_job) in &window.records {
        let mut conflict = false;
        for &(r1, p1) in prev_acc {
            for &(r2, p2) in &accesses {
                ctl.stats.dependence_checks += 1;
                if !needs_edge(p1, p2) {
                    continue;
                }
                if program.forest.root_of(r1) != program.forest.root_of(r2) {
                    continue;
                }
                if program.forest.provably_disjoint(r1, r2) {
                    continue;
                }
                if program
                    .forest
                    .domain(r1)
                    .overlaps(program.forest.domain(r2))
                {
                    conflict = true;
                    break;
                }
            }
            if conflict {
                break;
            }
        }
        if conflict {
            // The edge is recorded even when the predecessor already
            // finished: its completion happened-before this launch, so
            // the ordering is real either way (the trace validator
            // relies on it).
            ctl.tb.instant(EventKind::DepEdge {
                from_launch: prev_job.launch,
                from_pos: prev_job.pos,
                to_launch: launch,
                to_pos: pos,
            });
            // Register the edge unless the predecessor already finished.
            let mut deps = prev_job.dependents.lock().unwrap();
            if !prev_job.done.load(Ordering::SeqCst) {
                job.remaining.fetch_add(1, Ordering::SeqCst);
                deps.push(Arc::clone(&job));
                n_deps += 1;
            }
        }
    }
    ctl.tb.span_since(
        analysis_start,
        EventKind::DepAnalysis {
            launch,
            pos,
            checks: (ctl.stats.dependence_checks - checks_before) as u32,
        },
    );
    ctl.stats.dependence_edges += n_deps as u64;
    ctl.stats.tasks_launched += 1;
    pool.register();
    // Release the sentinel; submit if no edges remain.
    if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        pool.submit(Arc::clone(&job));
    }
    window.records.push((accesses, Arc::clone(&job)));
    ctl.stats.max_window = ctl.stats.max_window.max(window.records.len());
    if window.records.len() > 4096 {
        window.prune();
    }
    job
}
