//! The implicitly parallel executor — the non-control-replicated
//! baseline ("Regent w/o CR" in Figures 6–9).
//!
//! A single control thread walks the program in issue order, performs
//! dynamic dependence analysis for every point task against the window
//! of in-flight tasks (the Legion model of §4.1: "Legion discovers
//! parallelism between tasks by computing a dynamic dependence graph
//! over the tasks in an executing program"), and hands ready tasks to a
//! worker pool. Two tasks conflict when they touch possibly-overlapping
//! regions with incompatible privileges; the analysis first consults
//! the region tree (cheap, static) and falls back to exact domain
//! overlap.
//!
//! This is precisely the architecture whose *per-task control overhead*
//! grows with the machine: the control thread does O(N) analysis work
//! per time step. The executor counts that work
//! ([`ImplicitStats::dependence_checks`]) so the machine model in
//! `regent-machine` can charge it when projecting to large node counts,
//! and — when [`ImplicitOptions::tracer`] is enabled — records every
//! launch, analysis span, dependence edge, and kernel run as structured
//! events for the `regent-trace` consumers.
//!
//! Reduction privileges are serialized against each other here (rather
//! than staged through temporaries), which keeps fold order identical
//! to program order — executions are bit-identical to the sequential
//! interpreter, which the test suite exploits.
//!
//! ## Epoch-trace memoization
//!
//! With [`ImplicitOptions::memo`] set, the control thread memoizes one
//! epoch's (outermost-loop iteration's) dependence analysis as a
//! template and replays it on subsequent structurally identical epochs
//! (see [`crate::memo`]). A replayed epoch begins with a pool drain —
//! the trace fence that orders everything older before it — and then
//! issues each launch with the template's intra-epoch edges instead of
//! scanning the window. Each replayed launch still resolves its region
//! arguments and consults the [`Mapper`], so mapping decisions are
//! honored identically with and without replay; only the analysis is
//! skipped. Any divergence from the predicted template falls back to
//! full analysis mid-epoch, so memoization never changes results —
//! executions stay bit-identical to the interpreter.

use crate::mapper::{DefaultMapper, Mapper};
use crate::memo::{self, EpochTemplate, MemoCache};
use crate::metrics::{self, Counter, MetricsHandle, Timer};
use regent_geometry::{Domain, DynPoint};
use regent_ir::{interp::resolve_arg, ArgSlot, Privilege, Program, Stmt, Store, TaskCtx, TaskId};
use regent_region::{Instance, RegionId};
use regent_trace::{fields_mask, EventKind, PrivCode, TraceBuf, Tracer};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// Options for the implicit executor.
#[derive(Clone)]
pub struct ImplicitOptions {
    /// Worker threads executing ready tasks.
    pub num_workers: usize,
    /// The mapping policy assigning point tasks to workers (§4.2).
    pub mapper: Arc<dyn Mapper>,
    /// Event recorder; [`Tracer::disabled`] makes recording free.
    pub tracer: Arc<Tracer>,
    /// Epoch-trace memoization cache; `None` runs every epoch through
    /// full dependence analysis. Share one cache
    /// ([`MemoCache::shared`]) across executions to replay from the
    /// very first epoch of a re-run.
    pub memo: Option<Arc<Mutex<MemoCache>>>,
}

impl ImplicitOptions {
    /// `num_workers` workers with the default round-robin mapper,
    /// tracing off, and memoization off.
    pub fn with_workers(num_workers: usize) -> Self {
        ImplicitOptions {
            num_workers,
            mapper: Arc::new(DefaultMapper),
            tracer: Tracer::disabled(),
            memo: None,
        }
    }

    /// Enables epoch-trace memoization backed by `cache`.
    pub fn with_memo(mut self, cache: Arc<Mutex<MemoCache>>) -> Self {
        self.memo = Some(cache);
        self
    }
}

impl Default for ImplicitOptions {
    fn default() -> Self {
        ImplicitOptions::with_workers(4)
    }
}

/// Statistics from an implicit execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ImplicitStats {
    /// Point tasks launched.
    pub tasks_launched: u64,
    /// Pairwise dependence checks performed by the control thread —
    /// the dynamic-analysis work that makes single-control-thread
    /// execution stop scaling (§1).
    pub dependence_checks: u64,
    /// Dependence edges recorded.
    pub dependence_edges: u64,
    /// Peak size of the in-flight task window.
    pub max_window: usize,
    /// Epochs captured as reusable memoization templates.
    pub memo_captures: u64,
    /// Epochs fully replayed from a template (no analysis ran).
    pub memo_hits: u64,
    /// Replay attempts that diverged back to full analysis.
    pub memo_misses: u64,
    /// Template-cache invalidations observed (region-forest changes).
    pub memo_invalidations: u64,
    /// Point tasks issued by replay, without a window scan.
    pub memo_replayed_tasks: u64,
}

/// Raw instance pointer made sendable; exclusivity is guaranteed by the
/// dependence analysis (conflicting tasks are ordered by edges).
struct InstPtr(*mut Instance);
unsafe impl Send for InstPtr {}
unsafe impl Sync for InstPtr {}

struct JobArg {
    domain: Domain,
    privilege: Privilege,
    fields: Vec<regent_region::FieldId>,
    inst: InstPtr,
}

struct Job {
    task: TaskId,
    args: Vec<JobArg>,
    scalars: Vec<f64>,
    point: DynPoint,
    /// Dynamic launch sequence number (trace identity).
    launch: u32,
    /// Position in the launch domain (trace identity).
    pos: u32,
    /// Worker chosen by the mapper (§4.2).
    worker: usize,
    ret: Mutex<Option<f64>>,
    /// Dependencies not yet satisfied; the job is ready at zero.
    remaining: AtomicUsize,
    /// Jobs to notify on completion. Guarded together with `done`.
    dependents: Mutex<Vec<Arc<Job>>>,
    done: AtomicBool,
}

struct Pool {
    /// One ready queue per worker; the mapper picks the queue.
    ready_tx: Vec<Sender<Option<Arc<Job>>>>,
    outstanding: Mutex<usize>,
    drained: Condvar,
}

impl Pool {
    fn submit(&self, job: Arc<Job>) {
        let w = job.worker;
        self.ready_tx[w].send(Some(job)).unwrap();
    }

    fn complete_one(&self) {
        let mut n = self.outstanding.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            self.drained.notify_all();
        }
    }

    fn register(&self) {
        *self.outstanding.lock().unwrap() += 1;
    }

    fn wait_drained(&self) {
        let mut n = self.outstanding.lock().unwrap();
        while *n > 0 {
            let (guard, timeout) = self
                .drained
                .wait_timeout(n, crate::collective::hang_timeout())
                .unwrap();
            n = guard;
            if timeout.timed_out() && *n > 0 {
                panic!(
                    "likely deadlock: control thread waited {:?} for the worker pool to drain ({} tasks still outstanding)",
                    crate::collective::hang_timeout(),
                    *n
                );
            }
        }
    }
}

fn run_job(
    job: &Job,
    tasks: &[regent_ir::TaskDecl],
    pool: &Pool,
    tb: &mut TraceBuf,
    mx: &mut MetricsHandle,
) {
    let decl = &tasks[job.task.0 as usize];
    let mut slots: Vec<ArgSlot> = job
        .args
        .iter()
        .map(|a| {
            // SAFETY: the dependence graph orders all conflicting
            // accesses; compatible concurrent accesses are read-read
            // (or serialized reductions), so constructing aliasing
            // slots here is race-free.
            unsafe { ArgSlot::new(a.domain.clone(), a.privilege, a.fields.clone(), a.inst.0) }
        })
        .collect();
    let mut ctx = TaskCtx::new(&mut slots, &job.scalars, job.point);
    let t0 = tb.now();
    let m0 = mx.start();
    (decl.kernel)(&mut ctx);
    mx.incr(Counter::TaskRuns);
    mx.record_since(m0, Timer::TaskRunNs);
    tb.span_since(
        t0,
        EventKind::TaskRun {
            launch: job.launch,
            pos: job.pos,
            task: job.task.0,
        },
    );
    *job.ret.lock().unwrap() = ctx.return_value;
    // Mark done and release dependents under the lock so late
    // edge-additions observe a consistent state.
    let deps = {
        let mut d = job.dependents.lock().unwrap();
        job.done.store(true, Ordering::SeqCst);
        std::mem::take(&mut *d)
    };
    for dep in deps {
        if dep.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            pool.submit(dep);
        }
    }
    pool.complete_one();
}

/// A window record: a task's region accesses and its job handle.
type WindowRecord = (Vec<(RegionId, Privilege)>, Arc<Job>);

/// Control-thread state: the window of issued, possibly-incomplete
/// tasks.
struct Window {
    records: Vec<WindowRecord>,
}

impl Window {
    fn prune(&mut self) {
        self.records.retain(|(_, j)| !j.done.load(Ordering::SeqCst));
    }
}

/// Control-thread bookkeeping threaded through statement execution:
/// statistics, the event recorder, the trace identity counters, and
/// the memoization state.
struct Ctl {
    stats: ImplicitStats,
    tb: TraceBuf,
    mx: MetricsHandle,
    launch_seq: u32,
    loop_depth: u32,
    memo: Option<MemoRt>,
}

impl Ctl {
    /// Emits the drain marker after the pool quiesced (a full barrier
    /// in the happens-before graph).
    fn drained(&mut self) {
        self.tb.instant(EventKind::Drain);
    }
}

/// Memoization runtime state: the shared template cache plus the epoch
/// currently being recorded or replayed.
struct MemoRt {
    cache: Arc<Mutex<MemoCache>>,
    /// Open while the control flow is inside an outermost-loop
    /// iteration.
    epoch: Option<EpochRec>,
}

/// Recording/replay state of one open epoch.
struct EpochRec {
    /// Outermost-loop iteration number (trace identity).
    step: u64,
    /// Region-forest version the epoch runs against (stamped into any
    /// template captured from it).
    forest_version: u64,
    /// Launch signatures in issue order.
    sigs: Vec<u64>,
    /// Intra-epoch predecessor indices per launch — the template
    /// payload. Kept parallel to `sigs` in both modes.
    edges: Vec<Vec<u32>>,
    /// Job handles by epoch index (replay edge targets).
    jobs: Vec<Arc<Job>>,
    /// Job identity (`Arc` pointer) → epoch index, for recognizing
    /// intra-epoch predecessors during capture.
    index_of: std::collections::HashMap<usize, u32>,
    /// The template being replayed; `None` in capture mode or after a
    /// divergence.
    replay: Option<EpochTemplate>,
    /// Next template position to match during replay.
    cursor: usize,
    /// A replay diverged somewhere in this epoch.
    missed: bool,
    /// The window overflowed mid-epoch and was pruned; the recorded
    /// edges may be incomplete, so no template may be stored.
    poisoned: bool,
    /// Pairwise dependence checks paid inside this epoch.
    checks: u64,
    /// Tasks issued via replay in this epoch.
    replayed: u64,
}

/// Opens a new epoch at an outermost-loop iteration boundary: closes
/// the previous epoch, validates the template cache against the region
/// forest, and decides between replay (fence + template) and capture.
fn memo_begin_epoch(program: &Program, pool: &Pool, window: &mut Window, ctl: &mut Ctl, step: u64) {
    if ctl.memo.is_none() {
        return;
    }
    memo_end_epoch(ctl);
    let version = program.forest.version();
    let (replay, invalidated) = {
        let m = ctl.memo.as_ref().unwrap();
        let mut cache = m.cache.lock().unwrap();
        let dropped = cache.validate_forest(version);
        (
            cache
                .predicted_template()
                .filter(|t| !t.is_empty())
                .cloned(),
            dropped,
        )
    };
    if invalidated > 0 {
        ctl.tb.instant(EventKind::MemoInvalidate {
            templates: invalidated as u32,
        });
        ctl.stats.memo_invalidations += 1;
    }
    if replay.is_some() {
        // Trace fence: quiesce the pool so everything issued before
        // this epoch happens-before everything inside it. The
        // template's intra-epoch edges then cover every ordering the
        // epoch needs, so no cross-epoch analysis is required.
        pool.wait_drained();
        ctl.drained();
        window.records.clear();
    }
    let m = ctl.memo.as_mut().unwrap();
    m.epoch = Some(EpochRec {
        step,
        forest_version: version,
        sigs: Vec::new(),
        edges: Vec::new(),
        jobs: Vec::new(),
        index_of: std::collections::HashMap::new(),
        replay,
        cursor: 0,
        missed: false,
        poisoned: false,
        checks: 0,
        replayed: 0,
    });
}

/// Closes the open epoch, if any: classifies it as a hit, miss, or
/// capture, updates the template cache, and records the epoch's key as
/// the replay prediction for the next epoch.
fn memo_end_epoch(ctl: &mut Ctl) {
    let Some(m) = ctl.memo.as_mut() else { return };
    let Some(ep) = m.epoch.take() else { return };
    let key = memo::epoch_key(&ep.sigs);
    let tasks = ep.sigs.len() as u32;
    let mut cache = m.cache.lock().unwrap();
    cache.stats.replayed_tasks += ep.replayed;
    let storable = !ep.poisoned && !ep.sigs.is_empty();
    let template = |ep: &EpochRec| EpochTemplate {
        key,
        launch_sigs: ep.sigs.clone(),
        edges: ep.edges.clone(),
        forest_version: ep.forest_version,
        capture_checks: ep.checks,
    };
    match (&ep.replay, ep.missed) {
        (Some(t), _) if ep.cursor == t.len() => {
            // Full replay (a divergence would have cleared `replay`).
            ctl.tb.instant(EventKind::MemoHit {
                epoch: ep.step,
                key,
                tasks,
            });
            ctl.stats.memo_hits += 1;
            ctl.mx.incr(Counter::MemoHits);
            cache.stats.hits += 1;
        }
        (Some(_), _) => {
            // The epoch ended while the template expected more
            // launches: a divergence at the epoch boundary.
            ctl.tb.instant(EventKind::MemoMiss {
                epoch: ep.step,
                at: ep.cursor as u32,
            });
            ctl.stats.memo_misses += 1;
            ctl.mx.incr(Counter::MemoMisses);
            cache.stats.misses += 1;
            if storable {
                cache.insert(template(&ep));
            }
        }
        (None, true) => {
            // Diverged mid-epoch (the miss event was emitted at the
            // divergence point). Keep the freshly analyzed shape so a
            // stable new pattern replays from its next occurrence.
            cache.stats.misses += 1;
            if storable {
                cache.insert(template(&ep));
            }
        }
        (None, false) => {
            // Analyzed end to end: capture (first occurrence wins).
            if storable && cache.get(key).is_none() {
                cache.insert(template(&ep));
                ctl.tb.instant(EventKind::MemoCapture {
                    epoch: ep.step,
                    key,
                    tasks,
                });
                ctl.stats.memo_captures += 1;
                ctl.mx.incr(Counter::MemoCaptures);
                cache.stats.captures += 1;
            }
        }
    }
    cache.set_predicted(key);
}

/// Maps an IR privilege to its trace-event code (shared with the SPMD
/// executor so both logs speak the same access language).
pub(crate) fn priv_code(p: Privilege) -> PrivCode {
    match p {
        Privilege::Read => PrivCode::Read,
        Privilege::ReadWrite => PrivCode::Write,
        Privilege::Reduce(op) => PrivCode::Reduce(op as u8),
    }
}

/// Do two privileges require an ordering edge when their regions
/// overlap? Reductions are serialized (see module docs).
fn needs_edge(a: Privilege, b: Privilege) -> bool {
    !matches!((a, b), (Privilege::Read, Privilege::Read))
}

/// Executes a program with implicit parallelism, returning the final
/// scalar environment and statistics. Results are bit-identical to
/// [`regent_ir::interp::run`].
pub fn execute_implicit(
    program: &Program,
    store: &mut Store,
    opts: ImplicitOptions,
) -> (Vec<f64>, ImplicitStats) {
    assert!(opts.num_workers > 0);
    let mut env: Vec<f64> = program.scalars.iter().map(|s| s.init).collect();

    // Cache raw pointers to every root instance (the map is not
    // mutated while workers run).
    let roots = program.root_regions();
    let mut inst_ptrs: std::collections::HashMap<RegionId, InstPtr> =
        std::collections::HashMap::new();
    for r in roots {
        inst_ptrs.insert(r, InstPtr(store.instance_mut(program, r) as *mut Instance));
    }

    let mut senders = Vec::with_capacity(opts.num_workers);
    let mut receivers = Vec::with_capacity(opts.num_workers);
    for _ in 0..opts.num_workers {
        let (tx, rx) = channel::<Option<Arc<Job>>>();
        senders.push(tx);
        receivers.push(rx);
    }
    let pool = Pool {
        ready_tx: senders,
        outstanding: Mutex::new(0),
        drained: Condvar::new(),
    };

    let mut ctl = Ctl {
        stats: ImplicitStats::default(),
        tb: opts.tracer.buffer("control"),
        mx: metrics::global().handle("control"),
        launch_seq: 0,
        loop_depth: 0,
        memo: opts.memo.as_ref().map(|c| MemoRt {
            cache: Arc::clone(c),
            epoch: None,
        }),
    };

    std::thread::scope(|scope| {
        for (w, rx) in receivers.into_iter().enumerate() {
            let pool = &pool;
            let tasks = &program.tasks;
            let tracer = Arc::clone(&opts.tracer);
            scope.spawn(move || {
                let mut tb = tracer.buffer(&format!("worker-{w}"));
                let mut mx = metrics::global().handle(&format!("worker-{w}"));
                // Bounded waits: a worker starved past the hang
                // timeout keeps polling (the control thread may just
                // be slow), but a disconnected channel or poison pill
                // ends the loop. The timeout exists so a worker stuck
                // on a job someone else deadlocked behind surfaces in
                // thread dumps at a known cadence rather than parking
                // forever in an unbounded recv().
                loop {
                    match rx.recv_timeout(crate::collective::hang_timeout()) {
                        Ok(Some(job)) => run_job(&job, tasks, pool, &mut tb, &mut mx),
                        Ok(None) => break,
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
            });
        }

        let mut window = Window {
            records: Vec::new(),
        };
        let route = Route {
            mapper: Arc::clone(&opts.mapper),
            num_workers: opts.num_workers,
        };
        exec_stmts(
            program,
            &program.body,
            &mut env,
            &inst_ptrs,
            &pool,
            &route,
            &mut window,
            &mut ctl,
        );
        memo_end_epoch(&mut ctl);
        pool.wait_drained();
        ctl.drained();
        // Poison pills: one per worker so every thread exits recv().
        for tx in &pool.ready_tx {
            tx.send(None).unwrap();
        }
    });

    ctl.tb.flush();
    let stats = ctl.stats;
    // Dropping `ctl` merges the control thread's metrics into the
    // global registry before the export below reads it.
    drop(ctl);
    metrics::export_env();
    (env, stats)
}

/// The routing policy: which worker a point task lands on.
struct Route {
    mapper: Arc<dyn Mapper>,
    num_workers: usize,
}

#[allow(clippy::too_many_arguments)]
fn exec_stmts(
    program: &Program,
    stmts: &[Stmt],
    env: &mut Vec<f64>,
    inst_ptrs: &std::collections::HashMap<RegionId, InstPtr>,
    pool: &Pool,
    route: &Route,
    window: &mut Window,
    ctl: &mut Ctl,
) {
    for s in stmts {
        match s {
            Stmt::IndexLaunch(il) => {
                let decl = program.task(il.task);
                let scalar_args: Vec<f64> = il.scalar_args.iter().map(|e| e.eval(env)).collect();
                let launch_seq = ctl.launch_seq;
                ctl.launch_seq += 1;
                let mut launch_jobs: Vec<Arc<Job>> = Vec::new();
                for (pos, &i) in il.launch_domain.iter().enumerate() {
                    let regions: Vec<RegionId> =
                        il.args.iter().map(|a| resolve_arg(program, a, i)).collect();
                    let job = issue_task(
                        program,
                        il.task,
                        &regions,
                        scalar_args.clone(),
                        i,
                        (launch_seq, pos as u32),
                        inst_ptrs,
                        pool,
                        route,
                        window,
                        ctl,
                    );
                    launch_jobs.push(job);
                }
                if let Some((var, op)) = il.reduce_result {
                    // Scalar reduction: wait for the launch, fold returns
                    // in launch order (§4.4).
                    pool.wait_drained();
                    ctl.drained();
                    let mut acc: Option<f64> = None;
                    for j in &launch_jobs {
                        let v = j
                            .ret
                            .lock()
                            .unwrap()
                            .unwrap_or_else(|| panic!("task {} returned no value", decl.name));
                        acc = Some(match acc {
                            None => v,
                            Some(a) => op.fold(a, v),
                        });
                    }
                    env[var.0 as usize] = acc.unwrap_or_else(|| op.identity());
                    window.records.clear();
                }
            }
            Stmt::SingleLaunch(sl) => {
                let scalar_args: Vec<f64> = sl.scalar_args.iter().map(|e| e.eval(env)).collect();
                let launch_seq = ctl.launch_seq;
                ctl.launch_seq += 1;
                let job = issue_task(
                    program,
                    sl.task,
                    &sl.args,
                    scalar_args,
                    DynPoint::from(0),
                    (launch_seq, 0),
                    inst_ptrs,
                    pool,
                    route,
                    window,
                    ctl,
                );
                if let Some(var) = sl.result {
                    pool.wait_drained();
                    ctl.drained();
                    env[var.0 as usize] = job.ret.lock().unwrap().unwrap_or_else(|| {
                        panic!("task {} returned no value", program.task(sl.task).name)
                    });
                    window.records.clear();
                }
            }
            Stmt::For { count, body } => {
                let n = count.eval(env).max(0.0) as u64;
                for it in 0..n {
                    if ctl.loop_depth == 0 {
                        ctl.tb.instant(EventKind::StepBegin { step: it });
                        memo_begin_epoch(program, pool, window, ctl, it);
                    }
                    ctl.loop_depth += 1;
                    exec_stmts(program, body, env, inst_ptrs, pool, route, window, ctl);
                    ctl.loop_depth -= 1;
                }
                if ctl.loop_depth == 0 {
                    memo_end_epoch(ctl);
                }
            }
            Stmt::While { cond, body } => {
                let mut it = 0u64;
                while cond.eval(env) != 0.0 {
                    if ctl.loop_depth == 0 {
                        ctl.tb.instant(EventKind::StepBegin { step: it });
                        memo_begin_epoch(program, pool, window, ctl, it);
                    }
                    ctl.loop_depth += 1;
                    exec_stmts(program, body, env, inst_ptrs, pool, route, window, ctl);
                    ctl.loop_depth -= 1;
                    it += 1;
                }
                if ctl.loop_depth == 0 {
                    memo_end_epoch(ctl);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if cond.eval(env) != 0.0 {
                    exec_stmts(program, then_body, env, inst_ptrs, pool, route, window, ctl);
                } else {
                    exec_stmts(program, else_body, env, inst_ptrs, pool, route, window, ctl);
                }
            }
            Stmt::SetScalar { var, expr } => env[var.0 as usize] = expr.eval(env),
        }
    }
}

/// Issues one point task: dependence analysis against the window, then
/// submission (deferred-execution style — the control thread never
/// blocks on the task itself).
#[allow(clippy::too_many_arguments)]
fn issue_task(
    program: &Program,
    task: TaskId,
    regions: &[RegionId],
    scalars: Vec<f64>,
    point: DynPoint,
    (launch, pos): (u32, u32),
    inst_ptrs: &std::collections::HashMap<RegionId, InstPtr>,
    pool: &Pool,
    route: &Route,
    window: &mut Window,
    ctl: &mut Ctl,
) -> Arc<Job> {
    let decl = program.task(task);
    let accesses: Vec<(RegionId, Privilege)> = regions
        .iter()
        .zip(&decl.params)
        .map(|(&r, p)| (r, p.privilege))
        .collect();
    let args: Vec<JobArg> = regions
        .iter()
        .zip(&decl.params)
        .map(|(&r, p)| {
            let root = program.forest.root_of(r);
            JobArg {
                domain: program.forest.domain(r).clone(),
                privilege: p.privilege,
                fields: p.fields.clone(),
                inst: InstPtr(inst_ptrs[&root].0),
            }
        })
        .collect();
    ctl.tb.instant(EventKind::TaskLaunch {
        launch,
        pos,
        task: task.0,
    });
    ctl.mx.incr(Counter::Launches);
    if ctl.tb.is_enabled() {
        // One access event per region argument; the instance identity
        // is the root region (all implicit-executor tasks share root
        // instances).
        for (&(r, p), param) in accesses.iter().zip(&decl.params) {
            ctl.tb.instant(EventKind::TaskAccess {
                launch,
                pos,
                region: r.0,
                inst: program.forest.root_of(r).0 as u64,
                fields: fields_mask(param.fields.iter().map(|f| f.0)),
                privilege: priv_code(p),
            });
        }
    }
    // `remaining` starts at 1: a sentinel held by the control thread
    // while edges are being added, preventing a predecessor that
    // completes mid-analysis from submitting the job twice.
    let worker = route.mapper.map_task(task, point, route.num_workers);
    assert!(
        worker < route.num_workers,
        "mapper chose worker {worker} of {}",
        route.num_workers
    );
    let job = Arc::new(Job {
        task,
        args,
        scalars,
        point,
        launch,
        pos,
        worker,
        ret: Mutex::new(None),
        remaining: AtomicUsize::new(1),
        dependents: Mutex::new(Vec::new()),
        done: AtomicBool::new(false),
    });

    // Epoch-trace memoization: while an epoch is open every launch gets
    // a structural signature; a predicted epoch replays template edges
    // instead of scanning the window.
    let sig = match &ctl.memo {
        Some(m) if m.epoch.is_some() => Some(memo::launch_sig(task.0, &point, &accesses)),
        _ => None,
    };
    let mut replayed = false;
    if let Some(sig) = sig {
        let ep = ctl.memo.as_mut().unwrap().epoch.as_mut().unwrap();
        if let Some(t) = &ep.replay {
            if ep.cursor < t.len() && t.launch_sigs[ep.cursor] == sig {
                // Replay: apply the template's intra-epoch predecessors
                // directly — no window scan, no analysis span. The
                // bookkeeping that remains (edge application) is
                // recorded as a MemoReplay span, the memo-path
                // counterpart of DepAnalysis in blame reports.
                let replay_start = ctl.tb.now();
                let preds = t.edges[ep.cursor].clone();
                let mut n_deps = 0usize;
                for &p in &preds {
                    let prev_job = &ep.jobs[p as usize];
                    ctl.tb.instant(EventKind::DepEdge {
                        from_launch: prev_job.launch,
                        from_pos: prev_job.pos,
                        to_launch: launch,
                        to_pos: pos,
                    });
                    let mut deps = prev_job.dependents.lock().unwrap();
                    if !prev_job.done.load(Ordering::SeqCst) {
                        job.remaining.fetch_add(1, Ordering::SeqCst);
                        deps.push(Arc::clone(&job));
                        n_deps += 1;
                    }
                }
                ep.edges.push(preds);
                ep.cursor += 1;
                ep.replayed += 1;
                ctl.tb
                    .span_since(replay_start, EventKind::MemoReplay { launch, pos });
                ctl.stats.memo_replayed_tasks += 1;
                ctl.mx.incr(Counter::MemoReplayedTasks);
                ctl.stats.dependence_edges += n_deps as u64;
                replayed = true;
            } else {
                // Divergence: this epoch stopped matching the predicted
                // template. Fall back to full analysis for the rest of
                // the epoch — sound, because the replayed prefix sits
                // in the window and the pre-epoch fence ordered
                // everything older.
                ctl.tb.instant(EventKind::MemoMiss {
                    epoch: ep.step,
                    at: ep.cursor as u32,
                });
                ctl.stats.memo_misses += 1;
                ctl.mx.incr(Counter::MemoMisses);
                ep.missed = true;
                ep.replay = None;
            }
        }
    }

    if !replayed {
        // Dependence analysis (the per-task control overhead).
        let analysis_start = ctl.tb.now();
        let analysis_m0 = ctl.mx.start();
        let checks_before = ctl.stats.dependence_checks;
        let mut n_deps = 0usize;
        let mut epoch_preds: Vec<u32> = Vec::new();
        for (prev_acc, prev_job) in &window.records {
            let mut conflict = false;
            for &(r1, p1) in prev_acc {
                for &(r2, p2) in &accesses {
                    ctl.stats.dependence_checks += 1;
                    if !needs_edge(p1, p2) {
                        continue;
                    }
                    if program.forest.root_of(r1) != program.forest.root_of(r2) {
                        continue;
                    }
                    if program.forest.provably_disjoint(r1, r2) {
                        continue;
                    }
                    if program
                        .forest
                        .domain(r1)
                        .overlaps(program.forest.domain(r2))
                    {
                        conflict = true;
                        break;
                    }
                }
                if conflict {
                    break;
                }
            }
            if conflict {
                // The edge is recorded even when the predecessor already
                // finished: its completion happened-before this launch, so
                // the ordering is real either way (the trace validator
                // relies on it).
                ctl.tb.instant(EventKind::DepEdge {
                    from_launch: prev_job.launch,
                    from_pos: prev_job.pos,
                    to_launch: launch,
                    to_pos: pos,
                });
                // Intra-epoch conflicts feed the template being captured.
                if let Some(m) = &ctl.memo {
                    if let Some(ep) = &m.epoch {
                        if let Some(&idx) = ep.index_of.get(&(Arc::as_ptr(prev_job) as usize)) {
                            epoch_preds.push(idx);
                        }
                    }
                }
                // Register the edge unless the predecessor already finished.
                let mut deps = prev_job.dependents.lock().unwrap();
                if !prev_job.done.load(Ordering::SeqCst) {
                    job.remaining.fetch_add(1, Ordering::SeqCst);
                    deps.push(Arc::clone(&job));
                    n_deps += 1;
                }
            }
        }
        let checks = ctl.stats.dependence_checks - checks_before;
        ctl.tb.span_since(
            analysis_start,
            EventKind::DepAnalysis {
                launch,
                pos,
                checks: checks as u32,
            },
        );
        ctl.mx.record_since(analysis_m0, Timer::DepAnalysisNs);
        ctl.mx.add(Counter::DepChecks, checks);
        ctl.stats.dependence_edges += n_deps as u64;
        if sig.is_some() {
            let ep = ctl.memo.as_mut().unwrap().epoch.as_mut().unwrap();
            ep.edges.push(epoch_preds);
            ep.checks += checks;
        }
    }
    ctl.stats.tasks_launched += 1;
    pool.register();
    // Release the sentinel; submit if no edges remain.
    if job.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        pool.submit(Arc::clone(&job));
    }
    window.records.push((accesses, Arc::clone(&job)));
    ctl.stats.max_window = ctl.stats.max_window.max(window.records.len());
    // Record the launch in the open epoch (both modes), keeping `sigs`
    // parallel to the `edges` entry pushed above.
    if let Some(sig) = sig {
        let ep = ctl.memo.as_mut().unwrap().epoch.as_mut().unwrap();
        ep.index_of
            .insert(Arc::as_ptr(&job) as usize, ep.sigs.len() as u32);
        ep.sigs.push(sig);
        ep.jobs.push(Arc::clone(&job));
    }
    if window.records.len() > 4096 {
        if sig.is_none() {
            window.prune();
        } else if window.records.len() > 65536 {
            // Pruning mid-epoch can drop a completed intra-epoch
            // predecessor and leave the captured template missing an
            // edge, so while an epoch is open the window only shrinks
            // past a hard cap — and the epoch is poisoned (no template
            // stored).
            ctl.memo.as_mut().unwrap().epoch.as_mut().unwrap().poisoned = true;
            window.prune();
        }
    }
    job
}
