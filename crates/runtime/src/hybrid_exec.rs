//! Executor for hybrid programs (§2.2's range-local application of
//! control replication): sequential segments run through the reference
//! interpreter, replicated segments through the SPMD executor, with the
//! root store and the scalar environment threading through all of them.
//!
//! Every replicated segment re-initializes its shard instances from the
//! store and flushes written partitions back at its end — exactly the
//! initialization/finalization copies of §3.1 placed at the range
//! boundaries.
//!
//! The traced entry point records a `Pass` span per segment on a
//! `hybrid` control track, bracketing the shard tracks the replicated
//! segments produce.
//!
//! Replicated segments inherit the SPMD executor's data plane
//! wholesale: each segment's shards exchange over the SPSC ring mesh
//! (or the legacy channel mesh under `REGENT_DATA_PLANE=channel`) and
//! pin under `REGENT_PIN_CORES`, with per-segment meshes constructed
//! inside [`execute_spmd_with_env_traced`].

use crate::metrics::{self, Counter};
use crate::spmd_exec::{execute_spmd_with_env_traced, ShardStats};
use regent_cr::hybrid::{HybridProgram, Segment};
use regent_ir::{interp, Store};
use regent_trace::{EventKind, Tracer};
use std::sync::Arc;

/// Result of a hybrid execution.
pub struct HybridRunResult {
    /// Final scalar environment.
    pub env: Vec<f64>,
    /// Aggregated SPMD statistics across all replicated segments.
    pub spmd_stats: ShardStats,
    /// Point tasks executed sequentially (outside replicated ranges).
    pub sequential_tasks: u64,
    /// Number of replicated segments executed.
    pub replicated_segments: usize,
}

/// Executes a hybrid program end to end.
pub fn execute_hybrid(hybrid: &HybridProgram, store: &mut Store) -> HybridRunResult {
    execute_hybrid_traced(hybrid, store, &Tracer::disabled())
}

/// [`execute_hybrid`] recording events into `tracer`: a `Pass` span per
/// segment on the `hybrid` track, plus the usual shard tracks from each
/// replicated segment.
pub fn execute_hybrid_traced(
    hybrid: &HybridProgram,
    store: &mut Store,
    tracer: &Arc<Tracer>,
) -> HybridRunResult {
    let mut tb = tracer.buffer("hybrid");
    let mut mx = metrics::global().handle("hybrid");
    let mut env: Vec<f64> = hybrid.base.scalars.iter().map(|s| s.init).collect();
    let mut spmd_stats = ShardStats::default();
    let mut sequential_tasks = 0;
    let mut replicated_segments = 0;
    for segment in &hybrid.segments {
        match segment {
            Segment::Sequential(stmts) => {
                let t0 = tb.now();
                let stats = interp::run_stmts_in(&hybrid.base, store, stmts, &mut env);
                tb.span_since(
                    t0,
                    EventKind::Pass {
                        name: "segment-sequential",
                    },
                );
                sequential_tasks += stats.tasks_executed;
                mx.add(Counter::SequentialTasks, stats.tasks_executed);
            }
            Segment::Replicated(spmd) => {
                let t0 = tb.now();
                let r = execute_spmd_with_env_traced(spmd, store, env.clone(), tracer);
                tb.span_since(
                    t0,
                    EventKind::Pass {
                        name: "segment-replicated",
                    },
                );
                env = r.env;
                spmd_stats.merge_from(&r.stats);
                mx.incr(Counter::ReplicatedSegments);
                replicated_segments += 1;
            }
        }
    }
    tb.flush();
    drop(mx);
    metrics::export_env();
    HybridRunResult {
        env,
        spmd_stats,
        sequential_tasks,
        replicated_segments,
    }
}
