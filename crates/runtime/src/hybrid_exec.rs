//! Executor for hybrid programs (§2.2's range-local application of
//! control replication): sequential segments run through the reference
//! interpreter, replicated segments through the SPMD executor, with the
//! root store and the scalar environment threading through all of them.
//!
//! Every replicated segment re-initializes its shard instances from the
//! store and flushes written partitions back at its end — exactly the
//! initialization/finalization copies of §3.1 placed at the range
//! boundaries.

use crate::spmd_exec::{execute_spmd_with_env, ShardStats};
use regent_cr::hybrid::{HybridProgram, Segment};
use regent_ir::{interp, Store};

/// Result of a hybrid execution.
pub struct HybridRunResult {
    /// Final scalar environment.
    pub env: Vec<f64>,
    /// Aggregated SPMD statistics across all replicated segments.
    pub spmd_stats: ShardStats,
    /// Point tasks executed sequentially (outside replicated ranges).
    pub sequential_tasks: u64,
    /// Number of replicated segments executed.
    pub replicated_segments: usize,
}

/// Executes a hybrid program end to end.
pub fn execute_hybrid(hybrid: &HybridProgram, store: &mut Store) -> HybridRunResult {
    let mut env: Vec<f64> = hybrid.base.scalars.iter().map(|s| s.init).collect();
    let mut spmd_stats = ShardStats::default();
    let mut sequential_tasks = 0;
    let mut replicated_segments = 0;
    for segment in &hybrid.segments {
        match segment {
            Segment::Sequential(stmts) => {
                let stats = interp::run_stmts_in(&hybrid.base, store, stmts, &mut env);
                sequential_tasks += stats.tasks_executed;
            }
            Segment::Replicated(spmd) => {
                let r = execute_spmd_with_env(spmd, store, env.clone());
                env = r.env;
                spmd_stats.merge_from(&r.stats);
                replicated_segments += 1;
            }
        }
    }
    HybridRunResult {
        env,
        spmd_stats,
        sequential_tasks,
        replicated_segments,
    }
}
