//! Executor for hybrid programs (§2.2's range-local application of
//! control replication): sequential segments run through the reference
//! interpreter, replicated segments through the SPMD executor, with the
//! root store and the scalar environment threading through all of them.
//!
//! Every replicated segment re-initializes its shard instances from the
//! store and flushes written partitions back at its end — exactly the
//! initialization/finalization copies of §3.1 placed at the range
//! boundaries.
//!
//! The traced entry point records a `Pass` span per segment on a
//! `hybrid` control track, bracketing the shard tracks the replicated
//! segments produce.
//!
//! Replicated segments inherit the SPMD executor's data plane
//! wholesale: each segment's shards exchange over the SPSC ring mesh
//! (or the legacy channel mesh under `REGENT_DATA_PLANE=channel`) and
//! pin under `REGENT_PIN_CORES`, with per-segment meshes constructed
//! inside [`execute_spmd_with_env_traced`].

use crate::metrics::{self, Counter};
use crate::spmd_exec::{
    execute_spmd_with_env_resilient_traced, execute_spmd_with_env_traced, RescueSlot,
    ResilienceOptions, ShardStats,
};
use regent_cr::hybrid::{HybridProgram, Segment};
use regent_ir::{interp, Store};
use regent_trace::{EventKind, Tracer};
use std::sync::{Arc, Mutex};

/// Result of a hybrid execution.
pub struct HybridRunResult {
    /// Final scalar environment.
    pub env: Vec<f64>,
    /// Aggregated SPMD statistics across all replicated segments.
    pub spmd_stats: ShardStats,
    /// Point tasks executed sequentially (outside replicated ranges).
    pub sequential_tasks: u64,
    /// Number of replicated segments executed.
    pub replicated_segments: usize,
}

/// Cross-attempt checkpoint slots for a hybrid job: one [`RescueSlot`]
/// per replicated segment, keyed by segment index. A supervisor hands
/// the same `HybridRescue` to every retry of a job, so each replicated
/// segment resumes from its own last committed checkpoint instead of
/// recomputing from scratch — the hybrid analogue of the single-slot
/// SPMD rescue. (Sequential segments re-run through the interpreter;
/// they are cheap and deterministic, so re-deriving their scalars is
/// free of risk.)
#[derive(Debug, Default)]
pub struct HybridRescue {
    slots: Mutex<Vec<Option<Arc<RescueSlot>>>>,
}

impl HybridRescue {
    /// An empty rescue container.
    pub fn new() -> HybridRescue {
        HybridRescue::default()
    }

    /// The slot for replicated segment `idx`, created on first use for
    /// a `num_shards`-strong membership.
    pub fn slot(&self, idx: usize, num_shards: usize) -> Arc<RescueSlot> {
        let mut g = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if g.len() <= idx {
            g.resize_with(idx + 1, || None);
        }
        g[idx]
            .get_or_insert_with(|| Arc::new(RescueSlot::new(num_shards)))
            .clone()
    }

    /// Replaces the slot for replicated segment `idx` (used by the
    /// failover driver after remapping a segment's checkpoint onto a
    /// shrunken membership).
    pub fn replace_slot(&self, idx: usize, slot: Arc<RescueSlot>) {
        let mut g = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if g.len() <= idx {
            g.resize_with(idx + 1, || None);
        }
        g[idx] = Some(slot);
    }

    /// The current slot for replicated segment `idx`, if one exists.
    pub fn existing_slot(&self, idx: usize) -> Option<Arc<RescueSlot>> {
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(idx)
            .cloned()
            .flatten()
    }

    /// Highest committed checkpoint epoch across all segments — a
    /// cheap "has anything committed" probe for tests and supervisors.
    pub fn max_checkpoint_epoch(&self) -> Option<u64> {
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .flatten()
            .filter_map(|s| s.checkpoint_epoch())
            .max()
    }
}

/// Executes a hybrid program end to end.
pub fn execute_hybrid(hybrid: &HybridProgram, store: &mut Store) -> HybridRunResult {
    execute_hybrid_traced(hybrid, store, &Tracer::disabled())
}

/// Executes a hybrid program with checkpoint–restart threaded through
/// its replicated segments: each gets `opts` (fault plan, integrity,
/// cancellation) plus its own cross-attempt [`RescueSlot`] from
/// `rescue` — so a retried hybrid job fast-forwards every replicated
/// segment to its last committed checkpoint, exactly like a retried
/// SPMD job (the shared-log executor, by contrast, retries from
/// scratch: its sequencer cannot re-derive consumed `AllReduce`
/// feedback).
pub fn execute_hybrid_resilient(
    hybrid: &HybridProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    rescue: Option<&HybridRescue>,
) -> HybridRunResult {
    execute_hybrid_resilient_traced(hybrid, store, opts, rescue, &Tracer::disabled())
}

/// [`execute_hybrid_resilient`] recording events into `tracer`.
pub fn execute_hybrid_resilient_traced(
    hybrid: &HybridProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    rescue: Option<&HybridRescue>,
    tracer: &Arc<Tracer>,
) -> HybridRunResult {
    execute_hybrid_inner(hybrid, store, Some((opts, rescue)), tracer)
}

/// [`execute_hybrid`] recording events into `tracer`: a `Pass` span per
/// segment on the `hybrid` track, plus the usual shard tracks from each
/// replicated segment.
pub fn execute_hybrid_traced(
    hybrid: &HybridProgram,
    store: &mut Store,
    tracer: &Arc<Tracer>,
) -> HybridRunResult {
    execute_hybrid_inner(hybrid, store, None, tracer)
}

fn execute_hybrid_inner(
    hybrid: &HybridProgram,
    store: &mut Store,
    resilience: Option<(&ResilienceOptions, Option<&HybridRescue>)>,
    tracer: &Arc<Tracer>,
) -> HybridRunResult {
    let mut tb = tracer.buffer("hybrid");
    let mut mx = metrics::global().handle("hybrid");
    let mut env: Vec<f64> = hybrid.base.scalars.iter().map(|s| s.init).collect();
    let mut spmd_stats = ShardStats::default();
    let mut sequential_tasks = 0;
    let mut replicated_segments = 0;
    for segment in &hybrid.segments {
        match segment {
            Segment::Sequential(stmts) => {
                let t0 = tb.now();
                let stats = interp::run_stmts_in(&hybrid.base, store, stmts, &mut env);
                tb.span_since(
                    t0,
                    EventKind::Pass {
                        name: "segment-sequential",
                    },
                );
                sequential_tasks += stats.tasks_executed;
                mx.add(Counter::SequentialTasks, stats.tasks_executed);
            }
            Segment::Replicated(spmd) => {
                let t0 = tb.now();
                let r = match resilience {
                    Some((opts, rescue)) => {
                        // Each replicated segment gets its own rescue
                        // slot, keyed by segment index: resume tokens
                        // and epochs are segment-local coordinates.
                        let mut seg_opts = opts.clone();
                        seg_opts.rescue =
                            rescue.map(|hr| hr.slot(replicated_segments, spmd.num_shards));
                        execute_spmd_with_env_resilient_traced(
                            spmd,
                            store,
                            env.clone(),
                            &seg_opts,
                            tracer,
                        )
                    }
                    None => execute_spmd_with_env_traced(spmd, store, env.clone(), tracer),
                };
                tb.span_since(
                    t0,
                    EventKind::Pass {
                        name: "segment-replicated",
                    },
                );
                env = r.env;
                spmd_stats.merge_from(&r.stats);
                mx.incr(Counter::ReplicatedSegments);
                replicated_segments += 1;
            }
        }
    }
    tb.flush();
    drop(mx);
    metrics::export_env();
    HybridRunResult {
        env,
        spmd_stats,
        sequential_tasks,
        replicated_segments,
    }
}
