//! Live shard failover: elastic membership with survivor-side
//! reconstruction.
//!
//! The in-run resilience machinery (`spmd_exec`'s coordinated
//! replicated rollback) recovers from faults every shard *survives*.
//! This module recovers from faults that take a shard's **thread**
//! down — an injected membership kill ([`regent_fault::FaultEvent::ShardKill`]),
//! a genuine panic, or a hang past the [`crate::collective::hang_timeout`]
//! deadline. The protocol, phase by phase:
//!
//! 1. **Detection.** The dying shard's [`crate::spmd_exec::PanicGuard`]
//!    poisons the shared barrier and collective with a structured
//!    [`PeerDeath`] cause, and its senders drop (sealing its SPSC
//!    rings), so every survivor unwinds promptly — blocked waiters see
//!    the poison, blocked receivers see `Disconnected`, and a
//!    stalled-but-alive peer is caught by the bounded `recv_timeout`,
//!    which blames the *producer* on the shared [`DeathBoard`].
//! 2. **Agreement.** Control flow is replicated, so no election is
//!    needed: the failover driver (this module) catches the attempt's
//!    unwind, reads the board's first entry as the root cause, and the
//!    last *committed* [`RescueSlot`] checkpoint — by construction a
//!    consistent cut every shard offered identically — is the agreed
//!    resume point.
//! 3. **Reconstruction.** The committed checkpoint holds every shard's
//!    instances, including the victim's. [`remap_resume_state`]
//!    redistributes them onto the shrunken membership: partition
//!    instances move to each color's new block owner, whole-region
//!    replicas and reduction temporaries are cloned from a survivor
//!    (replicas are bit-identical at boundaries; temps are dead there —
//!    a `ResetTemp` precedes every use).
//! 4. **Resume.** The program is re-executed at `N−1` shards — the
//!    compiled body is shard-agnostic (all placement flows through
//!    `owned_colors` / `block_range` / `owner_of`), so mutating
//!    `num_shards` re-plans the mesh, barrier, and exchange plan — and
//!    the pre-seeded rescue slot fast-forwards every survivor to the
//!    checkpoint epoch. Results are **bit-identical** to an undisturbed
//!    run: element-wise reductions flow through temporaries applied in
//!    deterministic global order, and scalar collectives fold in shard
//!    order over block-owned contributions, both independent of the
//!    shard count.
//!
//! Failed attempts record into a private inner tracer that is simply
//! dropped; only the successful attempt's trace is absorbed into the
//! caller's, plus `PeerDeath` / `MembershipChange` /
//! `FailoverReconstruct` events on a dedicated `failover` track the
//! Spy validator ignores — so a recovered run's trace certifies like
//! any other.
//!
//! The shared-log executor also fails over ([`execute_log_failover`])
//! but re-executes from scratch at the shrunken membership: its
//! sequencer cannot re-derive `AllReduce` feedback it already
//! consumed, so log jobs have no resume path (the same reason the
//! supervisor never gives them a rescue slot). The hybrid executor
//! ([`execute_hybrid_failover`]) carries the shrunken membership
//! across *all* its replicated segments and remaps each segment's
//! committed checkpoint individually.
//!
//! Enable via [`FailoverOptions::from_env`]: `REGENT_FAILOVER=1` turns
//! the drivers on, `REGENT_FAILOVER_MAX=<n>` bounds the membership
//! changes (default 1); a loss beyond the budget (or below one shard)
//! fail-stops with [`FAILOVER_EXHAUSTED_PREFIX`], which
//! [`regent_fault::classify_failure`] maps to a permanent failure.

use crate::hybrid_exec::{execute_hybrid_resilient_traced, HybridRescue, HybridRunResult};
use crate::log_exec::{execute_log_resilient_traced, LogRunResult};
use crate::metrics::{self, Counter, Timer};
use crate::plan::InstKey;
use crate::spmd_exec::{
    execute_spmd_resilient_traced, panic_message, DeathBoard, RescueSlot, ResilienceOptions,
    ResumeState, SpmdRunResult,
};
use regent_cr::hybrid::{HybridProgram, Segment};
use regent_cr::{MembershipRemap, SpmdProgram, UseBase};
use regent_fault::{
    classify_failure, DeathCause, FailureClass, FaultEvent, FaultPlan, PeerDeath,
    FAILOVER_EXHAUSTED_PREFIX,
};
use regent_ir::Store;
use regent_region::Instance;
use regent_trace::flight::flight;
use regent_trace::{EventKind, Tracer};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration of the failover drivers.
#[derive(Clone, Copy, Debug)]
pub struct FailoverOptions {
    /// Maximum membership changes (shard losses survived) before the
    /// run fail-stops with [`FAILOVER_EXHAUSTED_PREFIX`].
    pub max_failovers: u32,
    /// Smallest membership the run may shrink to.
    pub min_shards: usize,
}

impl Default for FailoverOptions {
    fn default() -> FailoverOptions {
        FailoverOptions {
            max_failovers: 1,
            min_shards: 1,
        }
    }
}

impl FailoverOptions {
    /// Builds options from the environment: `Some` when
    /// `REGENT_FAILOVER` is set to anything but `0`, with the loss
    /// budget from `REGENT_FAILOVER_MAX` (default 1).
    pub fn from_env() -> Option<FailoverOptions> {
        if !failover_enabled() {
            return None;
        }
        let max_failovers = std::env::var("REGENT_FAILOVER_MAX")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Some(FailoverOptions {
            max_failovers,
            min_shards: 1,
        })
    }
}

/// True when `REGENT_FAILOVER` enables the failover drivers (any value
/// but `0` / empty).
pub fn failover_enabled() -> bool {
    std::env::var("REGENT_FAILOVER").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Result of a failover-supervised SPMD execution.
pub struct FailoverRunResult {
    /// The successful attempt's run result.
    pub run: SpmdRunResult,
    /// Executor attempts launched (1 ⇒ nothing died).
    pub attempts: u32,
    /// Shards in the final membership.
    pub final_shards: usize,
    /// Root-cause deaths survived, in order.
    pub deaths: Vec<PeerDeath>,
}

/// Result of a failover-supervised shared-log execution.
pub struct LogFailoverRunResult {
    /// The successful attempt's run result.
    pub run: LogRunResult,
    /// Executor attempts launched (1 ⇒ nothing died).
    pub attempts: u32,
    /// Shards in the final membership.
    pub final_shards: usize,
    /// Root-cause deaths survived, in order.
    pub deaths: Vec<PeerDeath>,
}

/// Result of a failover-supervised hybrid execution.
pub struct HybridFailoverRunResult {
    /// The successful attempt's run result.
    pub run: HybridRunResult,
    /// Executor attempts launched (1 ⇒ nothing died).
    pub attempts: u32,
    /// Shards in the final membership.
    pub final_shards: usize,
    /// Root-cause deaths survived, in order.
    pub deaths: Vec<PeerDeath>,
}

/// `(cause code, epoch)` for the trace convention (0 killed /
/// 1 panicked / 2 hung; epoch 0 when unknown).
fn cause_code(cause: DeathCause) -> (u32, u64) {
    match cause {
        DeathCause::Killed { epoch } => (0, epoch),
        DeathCause::Panicked => (1, 0),
        DeathCause::Hung => (2, 0),
    }
}

/// Remaps a fault plan's scheduled events onto a shrunken membership:
/// shard ids above the dead shard shift down by one (they keep
/// targeting the same logical survivor), events targeting the dead
/// shard are dropped (its thread is gone), and the kill that just
/// `fired` is removed so it cannot fire again on the re-run.
fn renumber_plan(
    plan: &FaultPlan,
    remap: &MembershipRemap,
    fired: Option<(u32, u64)>,
) -> FaultPlan {
    let mut renumbered = plan.clone();
    renumbered.events = plan
        .events
        .iter()
        .filter_map(|e| match *e {
            FaultEvent::ShardKill { shard, epoch } => {
                if fired == Some((shard, epoch)) {
                    return None;
                }
                remap.new_id(shard as usize).map(|s| FaultEvent::ShardKill {
                    shard: s as u32,
                    epoch,
                })
            }
            FaultEvent::ShardCrash { shard, epoch } => {
                remap
                    .new_id(shard as usize)
                    .map(|s| FaultEvent::ShardCrash {
                        shard: s as u32,
                        epoch,
                    })
            }
            // A stalled shard is the blamed victim: shrink drops its
            // stall with it; stalls on survivors retarget like kills.
            FaultEvent::ShardStall { shard, epoch, ms } => {
                remap
                    .new_id(shard as usize)
                    .map(|s| FaultEvent::ShardStall {
                        shard: s as u32,
                        epoch,
                        ms,
                    })
            }
            other => Some(other),
        })
        .collect();
    renumbered
}

/// Survivor-side reconstruction: redistributes a committed checkpoint
/// onto the shrunken membership. `spmd` must already carry the *new*
/// `num_shards` — the new per-shard key sets are derived through the
/// same `owned_colors` walk `allocate_shard_data` uses, so the
/// reconstructed parts are exactly what a native `N−1` checkpoint
/// would contain:
///
/// * partition instances (`UsePart` / `TempPart`) keep their color key
///   and move to the color's new block owner;
/// * whole-region replicas (`UseWhole`) are cloned from the surviving
///   old shard that maps to each new id — replicas are bit-identical
///   at epoch boundaries, so any survivor's copy is authoritative;
/// * whole-region reduction temporaries (`TempWhole`) likewise — temps
///   are dead at boundaries (a `ResetTemp` precedes every use), so the
///   cloned contents are never read before being reset.
///
/// Scalars, epoch, and resume token are membership-independent and
/// carry over unchanged. Returns the remapped state and the number of
/// instances placed.
pub(crate) fn remap_resume_state(
    rs: &ResumeState,
    spmd: &SpmdProgram,
    remap: &MembershipRemap,
) -> (ResumeState, u32) {
    debug_assert_eq!(spmd.num_shards, remap.new_shards);
    debug_assert_eq!(rs.parts.len(), remap.old_shards);
    let mut merged: HashMap<&InstKey, &Instance> = HashMap::new();
    for part in &rs.parts {
        for (k, v) in part {
            merged.insert(k, v);
        }
    }
    let fetch = |key: &InstKey| -> Instance {
        (*merged
            .get(key)
            .unwrap_or_else(|| panic!("checkpoint missing instance {key:?} during failover remap")))
        .clone()
    };
    let mut parts: Vec<HashMap<InstKey, Instance>> = Vec::with_capacity(remap.new_shards);
    let mut insts = 0u32;
    for s in 0..remap.new_shards {
        let old = remap.old_id(s);
        let mut map = HashMap::new();
        for (u, decl) in spmd.uses.iter().enumerate() {
            if !decl.needs_instances() {
                continue;
            }
            match decl.base {
                UseBase::Part(_) => {
                    for &c in spmd.owned_colors(decl.domain, s) {
                        let key = InstKey::UsePart(u as u32, c);
                        let inst = fetch(&key);
                        map.insert(key, inst);
                        insts += 1;
                    }
                }
                UseBase::Whole(_) => {
                    let inst = fetch(&InstKey::UseWhole(u as u32, old as u32));
                    map.insert(InstKey::UseWhole(u as u32, s as u32), inst);
                    insts += 1;
                }
            }
        }
        for (t, decl) in spmd.temps.iter().enumerate() {
            match decl.base {
                UseBase::Part(_) => {
                    for &c in spmd.owned_colors(decl.domain, s) {
                        let key = InstKey::TempPart(t as u32, c);
                        let inst = fetch(&key);
                        map.insert(key, inst);
                        insts += 1;
                    }
                }
                UseBase::Whole(_) => {
                    let inst = fetch(&InstKey::TempWhole(t as u32, old as u32));
                    map.insert(InstKey::TempWhole(t as u32, s as u32), inst);
                    insts += 1;
                }
            }
        }
        parts.push(map);
    }
    (
        ResumeState {
            epoch: rs.epoch,
            token: rs.token,
            loop_seq: rs.loop_seq,
            env: rs.env.clone(),
            parts,
        },
        insts,
    )
}

/// One caught attempt failure, classified: either the loss to fail
/// over from, or a panic payload to propagate unchanged.
struct CaughtLoss {
    death: PeerDeath,
    msg: String,
}

/// Classifies a caught attempt panic. Failures with no identified
/// victim (driver bugs, defects outside any shard) and cooperative
/// cancellations propagate unchanged — failover must never swallow a
/// supervisor's cancel or retry a run that did not lose a shard.
fn catch_loss(
    board: &DeathBoard,
    payload: Box<dyn std::any::Any + Send>,
) -> Result<CaughtLoss, Box<dyn std::any::Any + Send>> {
    let msg = panic_message(&*payload);
    if matches!(classify_failure(&msg), FailureClass::Cancelled) {
        return Err(payload);
    }
    match board.first() {
        Some(death) => Ok(CaughtLoss { death, msg }),
        None => Err(payload),
    }
}

/// Plans the membership shrink for a caught loss, or fail-stops when
/// the loss budget (or the membership floor) is exhausted. `losses` is
/// the count *including* this loss.
fn plan_shrink(
    loss: &CaughtLoss,
    num_shards: usize,
    fo: &FailoverOptions,
    losses: u32,
) -> MembershipRemap {
    let remap = MembershipRemap::shrink(num_shards, loss.death.shard);
    let viable = remap.is_some_and(|r| r.new_shards >= fo.min_shards.max(1));
    if losses > fo.max_failovers || !viable {
        // The fail-stop black box: dump the flight ring *before* the
        // unwind. Only a Mark is noted for this final loss — its
        // PeerDeath is deliberately NOT (the pair is noted only once a
        // shrink commits), so the dumped failover record stays
        // coherent (deaths == membership changes) and certifiable.
        flight().note(
            "flight",
            EventKind::Mark {
                name: "failover_exhausted",
            },
        );
        flight().dump_env("failover-exhausted", Some(&metrics::global().to_json()));
        panic!(
            "{FAILOVER_EXHAUSTED_PREFIX}: cannot survive loss {losses} ({}) with budget {} and \
             membership floor {} at {num_shards} shards: {}",
            loss.death,
            fo.max_failovers,
            fo.min_shards.max(1),
            loss.msg
        );
    }
    remap.expect("viability checked above")
}

/// Notes a committed shrink's `PeerDeath`/`MembershipChange` pair on
/// the flight recorder and dumps the black box (`REGENT_FLIGHT_DIR`).
/// Called only after [`plan_shrink`] commits, so flight dumps always
/// pair deaths with membership changes — the coherence the profiler's
/// certification demands.
fn note_failover_flight(death: EventKind, membership: EventKind) {
    let f = flight();
    if !f.is_enabled() {
        return;
    }
    f.note("failover", death);
    f.note("failover", membership);
    f.dump_env("failover", Some(&metrics::global().to_json()));
}

/// Executes a control-replicated program with live shard failover (see
/// the module docs): shard losses up to the budget shrink the
/// membership and resume from the last committed checkpoint instead of
/// failing the run. `spmd.num_shards` is left at the final membership.
pub fn execute_spmd_failover(
    spmd: &mut SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    fo: &FailoverOptions,
) -> FailoverRunResult {
    execute_spmd_failover_traced(spmd, store, opts, fo, &Tracer::disabled())
}

/// [`execute_spmd_failover`] recording events into `tracer`: the
/// successful attempt's shard tracks plus `PeerDeath` /
/// `MembershipChange` / `FailoverReconstruct` events on the `failover`
/// track.
pub fn execute_spmd_failover_traced(
    spmd: &mut SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    fo: &FailoverOptions,
    tracer: &Arc<Tracer>,
) -> FailoverRunResult {
    let board = Arc::new(DeathBoard::new());
    let mut opts = opts.clone();
    opts.board = Some(Arc::clone(&board));
    if opts.rescue.is_none() {
        opts.rescue = Some(Arc::new(RescueSlot::new(spmd.num_shards)));
    }
    let mut mx = metrics::global().handle("failover");
    let mut fb = tracer.buffer("failover");
    let mut deaths: Vec<PeerDeath> = Vec::new();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        board.clear();
        mx.incr(Counter::FailoverAttempts);
        // Each attempt records into a private tracer: a failed
        // attempt's trace is discarded wholesale (dropped), so the
        // caller only ever sees a certifiable successful execution.
        let inner = if tracer.is_enabled() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_spmd_resilient_traced(spmd, store, &opts, &inner)
        }));
        match outcome {
            Ok(run) => {
                tracer.absorb(inner.take());
                return FailoverRunResult {
                    run,
                    attempts,
                    final_shards: spmd.num_shards,
                    deaths,
                };
            }
            Err(payload) => {
                let m0 = mx.start();
                let loss = match catch_loss(&board, payload) {
                    Ok(loss) => loss,
                    Err(payload) => resume_unwind(payload),
                };
                mx.incr(Counter::PeerDeaths);
                deaths.push(loss.death);
                let remap = plan_shrink(&loss, spmd.num_shards, fo, deaths.len() as u32);
                let (code, kill_epoch) = cause_code(loss.death.cause);
                let death_event = EventKind::PeerDeath {
                    shard: loss.death.shard,
                    cause: code,
                    epoch: kill_epoch,
                };
                fb.instant(death_event);
                // Agreement: the last committed checkpoint (a
                // consistent cut every shard offered identically) is
                // the resume point; with none committed, the shrunken
                // membership re-executes from scratch — still
                // bit-identical, by determinism.
                let committed = opts
                    .rescue
                    .as_ref()
                    .expect("failover always installs a rescue slot")
                    .resume_state();
                let resume_epoch = committed.as_ref().map_or(0, |c| c.epoch);
                spmd.num_shards = remap.new_shards;
                let slot = match committed {
                    Some(rs) => {
                        let r0 = mx.start();
                        let t0 = fb.now();
                        let (remapped, insts) = remap_resume_state(&rs, spmd, &remap);
                        mx.record_since(r0, Timer::FailoverReconstructNs);
                        fb.span_since(
                            t0,
                            EventKind::FailoverReconstruct {
                                to_shards: remap.new_shards as u32,
                                insts,
                                epoch: rs.epoch,
                            },
                        );
                        RescueSlot::with_committed(remap.new_shards, Arc::new(remapped))
                    }
                    None => RescueSlot::new(remap.new_shards),
                };
                let membership_event = EventKind::MembershipChange {
                    from_shards: remap.old_shards as u32,
                    to_shards: remap.new_shards as u32,
                    dead_shard: loss.death.shard,
                    epoch: resume_epoch,
                };
                fb.instant(membership_event);
                note_failover_flight(death_event, membership_event);
                opts.rescue = Some(Arc::new(slot));
                let fired = match loss.death.cause {
                    DeathCause::Killed { epoch } => Some((loss.death.shard, epoch)),
                    _ => None,
                };
                opts.plan = renumber_plan(&opts.plan, &remap, fired);
                mx.incr(Counter::MembershipShrinks);
                mx.record_since(m0, Timer::MttrNs);
            }
        }
    }
}

/// Executes a program under the shared-log strategy with live shard
/// failover. Losses shrink the membership like the SPMD driver, but
/// each surviving attempt re-executes **from scratch**: the sequencer
/// cannot re-derive `AllReduce` feedback it already consumed, so log
/// runs have no checkpoint-resume path (see
/// [`crate::spmd_exec::ResilienceOptions::rescue`]).
pub fn execute_log_failover(
    spmd: &mut SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    fo: &FailoverOptions,
) -> LogFailoverRunResult {
    execute_log_failover_traced(spmd, store, opts, fo, &Tracer::disabled())
}

/// [`execute_log_failover`] recording events into `tracer`.
pub fn execute_log_failover_traced(
    spmd: &mut SpmdProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    fo: &FailoverOptions,
    tracer: &Arc<Tracer>,
) -> LogFailoverRunResult {
    let board = Arc::new(DeathBoard::new());
    let mut opts = opts.clone();
    opts.board = Some(Arc::clone(&board));
    // No resume path: offering snapshots into a slot nobody can resume
    // from would be pure checkpoint overhead.
    opts.rescue = None;
    let mut mx = metrics::global().handle("failover");
    let mut fb = tracer.buffer("failover");
    let mut deaths: Vec<PeerDeath> = Vec::new();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        board.clear();
        mx.incr(Counter::FailoverAttempts);
        let inner = if tracer.is_enabled() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_log_resilient_traced(spmd, store, &opts, &inner)
        }));
        match outcome {
            Ok(run) => {
                tracer.absorb(inner.take());
                return LogFailoverRunResult {
                    run,
                    attempts,
                    final_shards: spmd.num_shards,
                    deaths,
                };
            }
            Err(payload) => {
                let m0 = mx.start();
                let loss = match catch_loss(&board, payload) {
                    Ok(loss) => loss,
                    Err(payload) => resume_unwind(payload),
                };
                mx.incr(Counter::PeerDeaths);
                deaths.push(loss.death);
                let remap = plan_shrink(&loss, spmd.num_shards, fo, deaths.len() as u32);
                let (code, kill_epoch) = cause_code(loss.death.cause);
                let death_event = EventKind::PeerDeath {
                    shard: loss.death.shard,
                    cause: code,
                    epoch: kill_epoch,
                };
                fb.instant(death_event);
                spmd.num_shards = remap.new_shards;
                let membership_event = EventKind::MembershipChange {
                    from_shards: remap.old_shards as u32,
                    to_shards: remap.new_shards as u32,
                    dead_shard: loss.death.shard,
                    epoch: 0,
                };
                fb.instant(membership_event);
                note_failover_flight(death_event, membership_event);
                let fired = match loss.death.cause {
                    DeathCause::Killed { epoch } => Some((loss.death.shard, epoch)),
                    _ => None,
                };
                opts.plan = renumber_plan(&opts.plan, &remap, fired);
                mx.incr(Counter::MembershipShrinks);
                mx.record_since(m0, Timer::MttrNs);
            }
        }
    }
}

/// Executes a hybrid program with live shard failover: the shrunken
/// membership is applied to **every** replicated segment (a dead
/// thread stays dead for the rest of the job), and each segment's
/// committed checkpoint is remapped individually, so already-completed
/// segments fast-forward through their tails instead of recomputing.
pub fn execute_hybrid_failover(
    hybrid: &mut HybridProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    fo: &FailoverOptions,
) -> HybridFailoverRunResult {
    execute_hybrid_failover_traced(hybrid, store, opts, fo, &Tracer::disabled())
}

/// [`execute_hybrid_failover`] recording events into `tracer`.
pub fn execute_hybrid_failover_traced(
    hybrid: &mut HybridProgram,
    store: &mut Store,
    opts: &ResilienceOptions,
    fo: &FailoverOptions,
    tracer: &Arc<Tracer>,
) -> HybridFailoverRunResult {
    let board = Arc::new(DeathBoard::new());
    let mut opts = opts.clone();
    opts.board = Some(Arc::clone(&board));
    opts.rescue = None; // per-segment slots live in the HybridRescue
    let rescue = HybridRescue::new();
    let mut mx = metrics::global().handle("failover");
    let mut fb = tracer.buffer("failover");
    let mut deaths: Vec<PeerDeath> = Vec::new();
    let mut attempts = 0u32;
    let mut membership = hybrid
        .segments
        .iter()
        .find_map(|s| match s {
            Segment::Replicated(spmd) => Some(spmd.num_shards),
            Segment::Sequential(_) => None,
        })
        .unwrap_or(1);
    loop {
        attempts += 1;
        board.clear();
        mx.incr(Counter::FailoverAttempts);
        for seg in hybrid.segments.iter_mut() {
            if let Segment::Replicated(spmd) = seg {
                spmd.num_shards = membership;
            }
        }
        let inner = if tracer.is_enabled() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute_hybrid_resilient_traced(hybrid, store, &opts, Some(&rescue), &inner)
        }));
        match outcome {
            Ok(run) => {
                tracer.absorb(inner.take());
                return HybridFailoverRunResult {
                    run,
                    attempts,
                    final_shards: membership,
                    deaths,
                };
            }
            Err(payload) => {
                let m0 = mx.start();
                let loss = match catch_loss(&board, payload) {
                    Ok(loss) => loss,
                    Err(payload) => resume_unwind(payload),
                };
                mx.incr(Counter::PeerDeaths);
                deaths.push(loss.death);
                let remap = plan_shrink(&loss, membership, fo, deaths.len() as u32);
                let (code, kill_epoch) = cause_code(loss.death.cause);
                let death_event = EventKind::PeerDeath {
                    shard: loss.death.shard,
                    cause: code,
                    epoch: kill_epoch,
                };
                fb.instant(death_event);
                membership = remap.new_shards;
                // Remap every replicated segment's committed
                // checkpoint onto the survivors; empty slots (segments
                // the failed attempt never reached) simply reset.
                let mut seg_idx = 0usize;
                for seg in hybrid.segments.iter_mut() {
                    let Segment::Replicated(spmd) = seg else {
                        continue;
                    };
                    spmd.num_shards = membership;
                    let committed = rescue
                        .existing_slot(seg_idx)
                        .and_then(|slot| slot.resume_state());
                    let slot = match committed {
                        Some(rs) => {
                            let r0 = mx.start();
                            let t0 = fb.now();
                            let (remapped, insts) = remap_resume_state(&rs, spmd, &remap);
                            mx.record_since(r0, Timer::FailoverReconstructNs);
                            fb.span_since(
                                t0,
                                EventKind::FailoverReconstruct {
                                    to_shards: remap.new_shards as u32,
                                    insts,
                                    epoch: rs.epoch,
                                },
                            );
                            RescueSlot::with_committed(membership, Arc::new(remapped))
                        }
                        None => RescueSlot::new(membership),
                    };
                    rescue.replace_slot(seg_idx, Arc::new(slot));
                    seg_idx += 1;
                }
                let membership_event = EventKind::MembershipChange {
                    from_shards: remap.old_shards as u32,
                    to_shards: remap.new_shards as u32,
                    dead_shard: loss.death.shard,
                    epoch: kill_epoch,
                };
                fb.instant(membership_event);
                note_failover_flight(death_event, membership_event);
                let fired = match loss.death.cause {
                    DeathCause::Killed { epoch } => Some((loss.death.shard, epoch)),
                    _ => None,
                };
                opts.plan = renumber_plan(&opts.plan, &remap, fired);
                mx.incr(Counter::MembershipShrinks);
                mx.record_since(m0, Timer::MttrNs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumber_drops_fired_kill_and_shifts_ids() {
        let plan = FaultPlan::new(1)
            .kill_shard(1, 2)
            .kill_shard(3, 5)
            .crash_shard(2, 4);
        let remap = MembershipRemap::shrink(4, 1).unwrap();
        let out = renumber_plan(&plan, &remap, Some((1, 2)));
        assert_eq!(
            out.kill_schedule(),
            vec![(2, 5)],
            "surviving kill retargets old shard 3 = new shard 2"
        );
        assert_eq!(
            out.crash_schedule(),
            vec![(1, 4)],
            "crash on old shard 2 retargets new shard 1"
        );
    }

    #[test]
    fn renumber_drops_events_on_dead_shard() {
        let plan = FaultPlan::new(1).crash_shard(1, 3).kill_shard(1, 7);
        let remap = MembershipRemap::shrink(3, 1).unwrap();
        let out = renumber_plan(&plan, &remap, None);
        assert!(out.kill_schedule().is_empty());
        assert!(out.crash_schedule().is_empty());
    }

    #[test]
    fn failover_env_parsing() {
        // Not exported in this process: from_env is None.
        assert!(FailoverOptions::from_env().is_none() || failover_enabled());
        let d = FailoverOptions::default();
        assert_eq!(d.max_failovers, 1);
        assert_eq!(d.min_shards, 1);
    }
}
