//! The live telemetry plane: sliding-window latency histograms and
//! SLO burn-rate gauges.
//!
//! The always-on [`metrics`](crate::metrics) registry accumulates from
//! process start — exactly right for post-mortem totals, useless for
//! "is the service healthy *now*". This module adds the now-view: a
//! ring of log2-bucket histogram windows ([`SlidingHist`]) that forgets
//! samples older than the SLO window, per-(tenant, strategy) job
//! latency and per-tenant goodput series fed by the `regent-serve`
//! supervisor, and burn-rate accounting against two budgets:
//!
//! * **p99 burn** — the fraction of jobs in the window slower than the
//!   target p99 (`REGENT_SLO_P99_MS`, default 2000), divided by the
//!   1% that budget tolerates. Burn 1.0 = exactly on budget; 10.0 =
//!   burning a month of error budget in three days.
//! * **shed burn** — the fraction of arrivals rejected by admission
//!   control, divided by the shed budget (`REGENT_SLO_SHED_PCT`,
//!   default 5, i.e. 5% of arrivals may be shed before alarm).
//!
//! Everything here is exported as Prometheus *gauges* (they describe a
//! window, not a monotone total) by [`LivePlane::to_prometheus`], which
//! the scrape endpoint ([`crate::scrape`]) appends to the registry's
//! counter exposition. The window is `REGENT_SLO_WINDOW_SECS` (default
//! 30) split into [`SUBWINDOWS`] rotating slots, so a scrape sees at
//! least `window * (1 - 1/SUBWINDOWS)` and at most `window` seconds of
//! history — no sample ever survives past one full window.
//!
//! Kill switch: `REGENT_METRICS_OFF` disables the live plane along
//! with the registry, the scrape endpoint, and the flight recorder.

use crate::metrics::{prom_escape, Hist};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Rotating slots per sliding window. More slots = smoother expiry,
/// at 6 the staleness error is at most 1/6 of the window.
pub const SUBWINDOWS: usize = 6;

/// A sliding-window histogram: a ring of [`SUBWINDOWS`] log2-bucket
/// [`Hist`] slots, each covering one sub-span of the window. Recording
/// into a slot whose sub-span has passed resets it first, so merged
/// reads only ever see samples from the last window.
#[derive(Clone, Debug)]
pub struct SlidingHist {
    /// Sub-span length, nanoseconds.
    slot_ns: u64,
    /// `(slot epoch index, histogram)` per ring position.
    slots: [(u64, Hist); SUBWINDOWS],
}

impl SlidingHist {
    /// A window of `window_ns` total span.
    pub fn new(window_ns: u64) -> Self {
        SlidingHist {
            slot_ns: (window_ns / SUBWINDOWS as u64).max(1),
            slots: [(0, Hist::default()); SUBWINDOWS],
        }
    }

    fn slot_at(&mut self, now_ns: u64) -> &mut Hist {
        let idx = now_ns / self.slot_ns;
        let pos = (idx as usize) % SUBWINDOWS;
        let (epoch, hist) = &mut self.slots[pos];
        if *epoch != idx {
            *epoch = idx;
            *hist = Hist::default();
        }
        hist
    }

    /// Records one sample at absolute time `now_ns`.
    pub fn record_at(&mut self, now_ns: u64, sample_ns: u64) {
        self.slot_at(now_ns).record(sample_ns);
    }

    /// All live slots (sub-spans within one window of `now_ns`) merged
    /// into a single histogram.
    pub fn merged_at(&self, now_ns: u64) -> Hist {
        let idx = now_ns / self.slot_ns;
        let oldest = idx.saturating_sub(SUBWINDOWS as u64 - 1);
        let mut out = Hist::default();
        for (epoch, hist) in &self.slots {
            if *epoch >= oldest && *epoch <= idx {
                out.merge(hist);
            }
        }
        out
    }
}

/// A sliding-window event counter (same ring discipline as
/// [`SlidingHist`], holding plain counts).
#[derive(Clone, Debug)]
pub struct SlidingCount {
    slot_ns: u64,
    slots: [(u64, u64); SUBWINDOWS],
}

impl SlidingCount {
    /// A window of `window_ns` total span.
    pub fn new(window_ns: u64) -> Self {
        SlidingCount {
            slot_ns: (window_ns / SUBWINDOWS as u64).max(1),
            slots: [(0, 0); SUBWINDOWS],
        }
    }

    /// Adds `by` events at absolute time `now_ns`.
    pub fn add_at(&mut self, now_ns: u64, by: u64) {
        let idx = now_ns / self.slot_ns;
        let pos = (idx as usize) % SUBWINDOWS;
        let (epoch, n) = &mut self.slots[pos];
        if *epoch != idx {
            *epoch = idx;
            *n = 0;
        }
        *n += by;
    }

    /// Events within one window of `now_ns`.
    pub fn total_at(&self, now_ns: u64) -> u64 {
        let idx = now_ns / self.slot_ns;
        let oldest = idx.saturating_sub(SUBWINDOWS as u64 - 1);
        self.slots
            .iter()
            .filter(|(e, _)| *e >= oldest && *e <= idx)
            .map(|(_, n)| n)
            .sum()
    }
}

/// SLO configuration (see the module docs for the env variables).
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Target p99 job latency, milliseconds.
    pub p99_target_ms: f64,
    /// Tolerated shed fraction of arrivals (`0.05` = 5%).
    pub shed_budget: f64,
    /// Sliding window span, nanoseconds.
    pub window_ns: u64,
}

impl SloConfig {
    /// Reads `REGENT_SLO_P99_MS` / `REGENT_SLO_SHED_PCT` /
    /// `REGENT_SLO_WINDOW_SECS`, with defaults 2000 ms / 5% / 30 s.
    pub fn from_env() -> Self {
        let f = |k: &str, d: f64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .filter(|v| *v > 0.0)
                .unwrap_or(d)
        };
        SloConfig {
            p99_target_ms: f("REGENT_SLO_P99_MS", 2000.0),
            shed_budget: f("REGENT_SLO_SHED_PCT", 5.0) / 100.0,
            window_ns: (f("REGENT_SLO_WINDOW_SECS", 30.0) * 1e9) as u64,
        }
    }
}

/// Current burn rates over the sliding window (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BurnRates {
    /// Fraction of windowed jobs over the p99 target, / 1%.
    pub p99: f64,
    /// Fraction of windowed arrivals shed, / shed budget.
    pub shed: f64,
    /// Completed jobs in the window.
    pub completed: u64,
    /// Shed arrivals in the window.
    pub shed_count: u64,
}

struct LiveState {
    /// Job completion latency per (tenant, strategy label).
    latency: BTreeMap<(u32, &'static str), SlidingHist>,
    /// Completions per tenant (goodput numerator).
    completed: BTreeMap<u32, SlidingCount>,
    /// Sheds per tenant.
    shed: BTreeMap<u32, SlidingCount>,
    /// All completion latencies (service-wide quantiles).
    total: SlidingHist,
    /// Completions slower than the p99 target.
    over_target: SlidingCount,
}

/// The process-global live plane (see the module docs).
pub struct LivePlane {
    enabled: bool,
    epoch: Instant,
    cfg: SloConfig,
    state: Mutex<LiveState>,
}

/// The global live plane. Enabled unless `REGENT_METRICS_OFF` is set;
/// configured from the `REGENT_SLO_*` variables at first use.
pub fn live() -> &'static LivePlane {
    static PLANE: OnceLock<LivePlane> = OnceLock::new();
    PLANE.get_or_init(|| {
        LivePlane::with_config(
            std::env::var_os("REGENT_METRICS_OFF").is_none(),
            SloConfig::from_env(),
        )
    })
}

impl LivePlane {
    /// A plane with explicit configuration (tests; production goes
    /// through [`live`]).
    pub fn with_config(enabled: bool, cfg: SloConfig) -> Self {
        LivePlane {
            enabled,
            epoch: Instant::now(),
            cfg,
            state: Mutex::new(LiveState {
                latency: BTreeMap::new(),
                completed: BTreeMap::new(),
                shed: BTreeMap::new(),
                total: SlidingHist::new(cfg.window_ns),
                over_target: SlidingCount::new(cfg.window_ns),
            }),
        }
    }

    /// Is the plane recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The active SLO configuration.
    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one completed job for `tenant` under `strategy`.
    pub fn record_completion(&self, tenant: u32, strategy: &'static str, latency_ns: u64) {
        if self.enabled {
            self.record_completion_at(self.now_ns(), tenant, strategy, latency_ns);
        }
    }

    /// [`LivePlane::record_completion`] at an explicit time (tests).
    pub fn record_completion_at(
        &self,
        now_ns: u64,
        tenant: u32,
        strategy: &'static str,
        latency_ns: u64,
    ) {
        if !self.enabled {
            return;
        }
        let window = self.cfg.window_ns;
        let mut st = self.state.lock().expect("live plane poisoned");
        st.latency
            .entry((tenant, strategy))
            .or_insert_with(|| SlidingHist::new(window))
            .record_at(now_ns, latency_ns);
        st.completed
            .entry(tenant)
            .or_insert_with(|| SlidingCount::new(window))
            .add_at(now_ns, 1);
        st.total.record_at(now_ns, latency_ns);
        if latency_ns as f64 / 1e6 > self.cfg.p99_target_ms {
            st.over_target.add_at(now_ns, 1);
        }
    }

    /// Records one shed (admission-rejected) arrival for `tenant`.
    pub fn record_shed(&self, tenant: u32) {
        if self.enabled {
            self.record_shed_at(self.now_ns(), tenant);
        }
    }

    /// [`LivePlane::record_shed`] at an explicit time (tests).
    pub fn record_shed_at(&self, now_ns: u64, tenant: u32) {
        if !self.enabled {
            return;
        }
        let window = self.cfg.window_ns;
        let mut st = self.state.lock().expect("live plane poisoned");
        st.shed
            .entry(tenant)
            .or_insert_with(|| SlidingCount::new(window))
            .add_at(now_ns, 1);
    }

    /// Service-wide `(p50, p99)` latency estimate over the window,
    /// nanoseconds.
    pub fn quantiles(&self) -> (f64, f64) {
        self.quantiles_at(self.now_ns())
    }

    /// [`LivePlane::quantiles`] at an explicit time (tests).
    pub fn quantiles_at(&self, now_ns: u64) -> (f64, f64) {
        let st = self.state.lock().expect("live plane poisoned");
        let h = st.total.merged_at(now_ns);
        (h.quantile_ns(0.5), h.quantile_ns(0.99))
    }

    /// Current burn rates (see [`BurnRates`]).
    pub fn burn_rates(&self) -> BurnRates {
        self.burn_rates_at(self.now_ns())
    }

    /// [`LivePlane::burn_rates`] at an explicit time (tests).
    pub fn burn_rates_at(&self, now_ns: u64) -> BurnRates {
        let st = self.state.lock().expect("live plane poisoned");
        let completed: u64 = st.completed.values().map(|c| c.total_at(now_ns)).sum();
        let shed: u64 = st.shed.values().map(|c| c.total_at(now_ns)).sum();
        let over = st.over_target.total_at(now_ns);
        let p99 = if completed > 0 {
            (over as f64 / completed as f64) / 0.01
        } else {
            0.0
        };
        let arrivals = completed + shed;
        let shed_rate = if arrivals > 0 {
            (shed as f64 / arrivals as f64) / self.cfg.shed_budget
        } else {
            0.0
        };
        BurnRates {
            p99,
            shed: shed_rate,
            completed,
            shed_count: shed,
        }
    }

    /// Prometheus gauge exposition for the live window, appended after
    /// the registry's counter/histogram exposition by the scrape
    /// endpoint. Empty when the plane is disabled.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_at(self.now_ns())
    }

    /// [`LivePlane::to_prometheus`] at an explicit time (tests).
    pub fn to_prometheus_at(&self, now_ns: u64) -> String {
        if !self.enabled {
            return String::new();
        }
        let mut out = String::new();
        let window_s = self.cfg.window_ns as f64 / 1e9;
        {
            let st = self.state.lock().expect("live plane poisoned");
            if !st.latency.is_empty() {
                out.push_str(
                    "# HELP regent_live_job_latency_ns Sliding-window job latency quantile (ns)\n\
                     # TYPE regent_live_job_latency_ns gauge\n",
                );
                for ((tenant, strategy), sh) in &st.latency {
                    let h = sh.merged_at(now_ns);
                    if h.count == 0 {
                        continue;
                    }
                    for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                        writeln!(
                            out,
                            "regent_live_job_latency_ns{{tenant=\"{tenant}\",strategy=\"{}\",quantile=\"{label}\"}} {:.0}",
                            prom_escape(strategy),
                            h.quantile_ns(q)
                        )
                        .unwrap();
                    }
                }
            }
            let total = st.total.merged_at(now_ns);
            if total.count > 0 {
                out.push_str(
                    "# HELP regent_live_latency_ns Service-wide sliding-window latency quantile (ns)\n\
                     # TYPE regent_live_latency_ns gauge\n",
                );
                for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                    writeln!(
                        out,
                        "regent_live_latency_ns{{quantile=\"{label}\"}} {:.0}",
                        total.quantile_ns(q)
                    )
                    .unwrap();
                }
            }
            let any_goodput = st.completed.values().any(|c| c.total_at(now_ns) > 0);
            if any_goodput {
                out.push_str(
                    "# HELP regent_live_goodput_jps Sliding-window completed jobs per second\n\
                     # TYPE regent_live_goodput_jps gauge\n",
                );
                for (tenant, c) in &st.completed {
                    let n = c.total_at(now_ns);
                    if n > 0 {
                        writeln!(
                            out,
                            "regent_live_goodput_jps{{tenant=\"{tenant}\"}} {:.4}",
                            n as f64 / window_s
                        )
                        .unwrap();
                    }
                }
            }
        }
        let burn = self.burn_rates_at(now_ns);
        writeln!(
            out,
            "# HELP regent_slo_p99_target_ms Configured p99 latency target (ms)\n\
             # TYPE regent_slo_p99_target_ms gauge\n\
             regent_slo_p99_target_ms {}\n\
             # HELP regent_slo_window_seconds Sliding SLO window span (s)\n\
             # TYPE regent_slo_window_seconds gauge\n\
             regent_slo_window_seconds {}\n\
             # HELP regent_slo_p99_burn_rate Fraction of windowed jobs over the p99 target, / 1% budget\n\
             # TYPE regent_slo_p99_burn_rate gauge\n\
             regent_slo_p99_burn_rate {:.4}\n\
             # HELP regent_slo_shed_burn_rate Fraction of windowed arrivals shed, / shed budget\n\
             # TYPE regent_slo_shed_burn_rate gauge\n\
             regent_slo_shed_burn_rate {:.4}",
            self.cfg.p99_target_ms, window_s, burn.p99, burn.shed
        )
        .unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u64 = 6_000; // 6 us window -> 1 us slots

    fn cfg() -> SloConfig {
        SloConfig {
            p99_target_ms: 2000.0,
            shed_budget: 0.05,
            window_ns: W,
        }
    }

    #[test]
    fn sliding_hist_forgets_old_windows() {
        let mut sh = SlidingHist::new(W);
        sh.record_at(0, 100);
        sh.record_at(500, 100);
        assert_eq!(sh.merged_at(500).count, 2);
        // One full window later both samples have expired.
        assert_eq!(sh.merged_at(W + 1_000).count, 0);
        // A sample recorded mid-window survives until its slot rotates.
        sh.record_at(2 * W, 100);
        assert_eq!(sh.merged_at(2 * W + W - 1_500).count, 1);
    }

    #[test]
    fn sliding_count_rotation_resets_slots() {
        let mut c = SlidingCount::new(W);
        c.add_at(0, 3);
        assert_eq!(c.total_at(0), 3);
        // Same ring position one full revolution later must not leak
        // the stale count.
        c.add_at(SUBWINDOWS as u64 * 1_000, 1);
        assert_eq!(c.total_at(SUBWINDOWS as u64 * 1_000), 1);
    }

    #[test]
    fn burn_rates_track_targets() {
        let plane = LivePlane::with_config(true, cfg());
        // 99 fast jobs + 1 slow one: exactly on the 1% budget.
        for _ in 0..99 {
            plane.record_completion_at(100, 1, "spmd", 1_000_000);
        }
        plane.record_completion_at(100, 1, "spmd", 3_000_000_000); // 3 s > 2 s target
        let burn = plane.burn_rates_at(100);
        assert!((burn.p99 - 1.0).abs() < 1e-9, "p99 burn = {}", burn.p99);
        assert_eq!(burn.completed, 100);
        assert_eq!(burn.shed, 0.0);
        // 5 sheds out of 100 arrivals = exactly the 5% budget... but
        // sheds add arrivals: 5 / 105 ≈ 4.76% -> burn just under 1.
        for _ in 0..5 {
            plane.record_shed_at(100, 2);
        }
        let burn = plane.burn_rates_at(100);
        assert!(
            burn.shed > 0.9 && burn.shed < 1.0,
            "shed burn = {}",
            burn.shed
        );
        assert_eq!(burn.shed_count, 5);
    }

    #[test]
    fn exposition_contains_gauges_per_series() {
        let plane = LivePlane::with_config(true, cfg());
        plane.record_completion_at(100, 1, "spmd", 1_000_000);
        plane.record_completion_at(100, 2, "hybrid", 2_000_000);
        plane.record_shed_at(100, 1);
        let prom = plane.to_prometheus_at(100);
        assert!(prom.contains("# TYPE regent_live_job_latency_ns gauge"));
        assert!(prom.contains(
            "regent_live_job_latency_ns{tenant=\"1\",strategy=\"spmd\",quantile=\"0.99\"}"
        ));
        assert!(prom.contains("regent_live_goodput_jps{tenant=\"2\"}"));
        assert!(prom.contains("regent_live_latency_ns{quantile=\"0.5\"}"));
        assert!(prom.contains("regent_live_latency_ns{quantile=\"0.99\"}"));
        assert!(prom.contains("regent_slo_p99_burn_rate 0.0000"));
        assert!(prom.contains("regent_slo_shed_burn_rate"));
        assert!(prom.contains("regent_slo_p99_target_ms 2000"));
    }

    #[test]
    fn disabled_plane_is_silent() {
        let plane = LivePlane::with_config(false, cfg());
        plane.record_completion_at(0, 1, "spmd", 1);
        plane.record_shed_at(0, 1);
        assert_eq!(plane.burn_rates_at(0), BurnRates::default());
        assert_eq!(plane.to_prometheus_at(0), "");
    }
}
