//! Cooperative job cancellation for supervised executor runs.
//!
//! A [`CancelToken`] is handed to an executor through
//! [`ResilienceOptions::cancel`](crate::spmd_exec::ResilienceOptions)
//! and checked at every epoch boundary ([`ShardExec::boundary`] — the
//! same choke point the checkpoint/crash/integrity machinery runs
//! through, shared by the SPMD and shared-log executors). Cancellation
//! is therefore *cooperative*: a job stops at the next epoch boundary,
//! never mid-exchange, so the shared synchronization primitives are in
//! a quiescent state when the shard unwinds and the [`PanicGuard`]
//! poison path tears the remaining shards down cleanly.
//!
//! The unwind carries a structured message prefix
//! ([`CANCEL_PREFIX`] / [`TRANSIENT_PREFIX`]) that
//! `regent_fault::classify_failure` maps back to a
//! [`FailureClass`](regent_fault::FailureClass), which is how the
//! service supervisor distinguishes a deadline-cancelled job from an
//! injected transient fault (retry) or a genuine bug (quarantine).
//!
//! [`ShardExec::boundary`]: crate::spmd_exec
//! [`PanicGuard`]: crate::spmd_exec

use regent_fault::{CANCEL_PREFIX, TRANSIENT_PREFIX};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    reason: Mutex<String>,
    /// Wall-clock deadline; checked at epoch boundaries only, so the
    /// enforcement granularity is one epoch.
    deadline: Option<Instant>,
    /// Deterministic injected transient fault: every shard panics with
    /// [`TRANSIENT_PREFIX`] at the start of this epoch. Because the
    /// epoch counter is replicated, all shards reach the same decision
    /// without coordination — the same property the crash schedule
    /// relies on.
    transient_at: Option<u64>,
}

/// A cloneable, thread-safe cancellation token (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            cancelled: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
            deadline: None,
            transient_at: None,
        }
    }
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is
    /// called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires once `budget` wall-clock time has elapsed
    /// (measured from now), checked at epoch boundaries.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(Instant::now() + budget),
                ..Inner::default()
            }),
        }
    }

    /// A token that injects a transient fault at the start of `epoch`:
    /// every shard unwinds with a [`TRANSIENT_PREFIX`] diagnostic the
    /// supervisor classifies as retryable.
    pub fn with_transient_at(epoch: u64) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                transient_at: Some(epoch),
                ..Inner::default()
            }),
        }
    }

    /// A token combining an optional wall-clock budget with an
    /// optional injected transient epoch — what the service supervisor
    /// builds per attempt (the deadline spans attempts, the injection
    /// fires on the first one only).
    pub fn with_budget_and_transient(
        budget: Option<Duration>,
        transient_epoch: Option<u64>,
    ) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: budget.map(|b| Instant::now() + b),
                transient_at: transient_epoch,
                ..Inner::default()
            }),
        }
    }

    /// Requests cancellation with a human-readable reason. Idempotent;
    /// the first reason wins.
    pub fn cancel(&self, reason: &str) {
        let mut r = self.inner.reason.lock().expect("cancel reason poisoned");
        if !self.inner.cancelled.swap(true, Ordering::SeqCst) {
            *r = reason.to_string();
        }
    }

    /// Whether cancellation has been requested (explicitly or by a
    /// passed deadline). Does not consider the injected transient
    /// epoch, which only exists at boundaries.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Epoch-boundary check: panics with a structured diagnostic when
    /// the token has fired. Called by `ShardExec::boundary` on every
    /// shard of a supervised run.
    pub fn check_boundary(&self, shard: usize, epoch: u64) {
        if self.inner.transient_at == Some(epoch) {
            panic!("{TRANSIENT_PREFIX}: shard {shard} unavailable at epoch {epoch}");
        }
        if self.inner.cancelled.load(Ordering::SeqCst) {
            let reason = self.inner.reason.lock().expect("cancel reason poisoned");
            panic!("{CANCEL_PREFIX}: {reason} (shard {shard}, epoch {epoch})");
        }
        if let Some(d) = self.inner.deadline {
            let now = Instant::now();
            if now >= d {
                panic!(
                    "{CANCEL_PREFIX}: deadline budget exhausted \
                     (shard {shard}, epoch {epoch})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regent_fault::{classify_failure, FailureClass};

    #[test]
    fn plain_token_never_fires() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.check_boundary(0, 5); // must not panic
    }

    #[test]
    fn explicit_cancel_classifies_cancelled() {
        let t = CancelToken::new();
        t.cancel("tenant evicted");
        assert!(t.is_cancelled());
        let err = std::panic::catch_unwind(|| t.check_boundary(1, 3)).unwrap_err();
        let msg = crate::spmd_exec::panic_message(&*err);
        assert!(msg.contains("tenant evicted"), "{msg}");
        assert_eq!(classify_failure(&msg), FailureClass::Cancelled);
    }

    #[test]
    fn first_cancel_reason_wins() {
        let t = CancelToken::new();
        t.cancel("first");
        t.cancel("second");
        let err = std::panic::catch_unwind(|| t.check_boundary(0, 0)).unwrap_err();
        let msg = crate::spmd_exec::panic_message(&*err);
        assert!(msg.contains("first"), "{msg}");
    }

    #[test]
    fn deadline_fires_after_budget() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        let err = std::panic::catch_unwind(|| t.check_boundary(2, 7)).unwrap_err();
        let msg = crate::spmd_exec::panic_message(&*err);
        assert_eq!(classify_failure(&msg), FailureClass::Cancelled);
    }

    #[test]
    fn transient_epoch_fires_exactly_there() {
        let t = CancelToken::with_transient_at(4);
        t.check_boundary(0, 3);
        t.check_boundary(0, 5);
        let err = std::panic::catch_unwind(|| t.check_boundary(0, 4)).unwrap_err();
        let msg = crate::spmd_exec::panic_message(&*err);
        assert_eq!(classify_failure(&msg), FailureClass::Transient);
    }
}
