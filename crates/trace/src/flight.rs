//! The flight recorder: an always-on, fixed-size black box.
//!
//! Tracing ([`Tracer`](crate::Tracer)) records *everything* and is
//! therefore opt-in; the flight recorder records only *milestones* —
//! job lifecycle transitions, peer deaths, membership changes,
//! checkpoint restores, corruption escalations — into one bounded
//! process-global ring, cheaply enough to stay armed in production.
//! When something dies (a Permanent panic, a failover, a
//! `FAILOVER_EXHAUSTED` fail-stop), the last `REGENT_FLIGHT_EVENTS`
//! milestones plus a caller-supplied state snapshot (metrics JSON,
//! membership) are dumped to `REGENT_FLIGHT_DIR` as a native trace
//! document — importable by `regent-prof` and certifiable like any
//! other trace, so every crash leaves a post-mortem artifact even when
//! the run was otherwise untraced.
//!
//! The ring intentionally forgets: old milestones are evicted in
//! recording order and the dump reports how many. Eviction is *not*
//! trace-ring wrap-around (`Track::dropped` stays 0 in the dump — the
//! recorded window is complete over its own span); the `flightEvicted`
//! key in the dump carries the forgotten count instead.
//!
//! Kill switch: setting `REGENT_METRICS_OFF` disables the flight
//! recorder along with the metrics registry and the scrape endpoint —
//! one variable turns off every always-on telemetry path.

use crate::event::{Event, EventKind};
use crate::json::escape_into;
use crate::serial::tracks_json;
use crate::tracer::{Trace, Track};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (events), overridable via
/// `REGENT_FLIGHT_EVENTS` (`0` disables recording).
pub const DEFAULT_FLIGHT_EVENTS: usize = 1024;

/// One recorded milestone: the event plus the track name it would have
/// been recorded under in a full trace.
#[derive(Clone, Debug)]
struct Milestone {
    track: &'static str,
    event: Event,
}

/// The process-global flight recorder (see the module docs).
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    epoch: Instant,
    ring: Mutex<VecDeque<Milestone>>,
    evicted: AtomicU64,
    dumps: AtomicU64,
}

/// The global recorder. Armed unless `REGENT_METRICS_OFF` is set or
/// `REGENT_FLIGHT_EVENTS=0`; capacity from `REGENT_FLIGHT_EVENTS`
/// (default [`DEFAULT_FLIGHT_EVENTS`]).
pub fn flight() -> &'static FlightRecorder {
    static REC: OnceLock<FlightRecorder> = OnceLock::new();
    REC.get_or_init(|| {
        let capacity = std::env::var("REGENT_FLIGHT_EVENTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_FLIGHT_EVENTS);
        let enabled = capacity > 0 && std::env::var_os("REGENT_METRICS_OFF").is_none();
        FlightRecorder {
            enabled,
            capacity: capacity.max(1),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    })
}

impl FlightRecorder {
    /// Whether milestones are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a milestone at the current time under `track`.
    /// A single branch when disabled.
    pub fn note(&self, track: &'static str, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let ts = self.epoch.elapsed().as_nanos() as u64;
        self.note_at(track, Event { ts, dur: 0, kind });
    }

    /// Records a fully formed milestone event under `track`.
    pub fn note_at(&self, track: &'static str, event: Event) {
        if !self.enabled {
            return;
        }
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Milestone { track, event });
    }

    /// Milestones evicted by capacity so far.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Milestones currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the ring as a [`Trace`]: one track per distinct
    /// track name, events in recording order, `dropped = 0` (the window
    /// is complete over its own span; eviction is reported separately).
    pub fn snapshot(&self) -> Trace {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let mut tracks: Vec<Track> = Vec::new();
        for m in ring.iter() {
            match tracks.iter_mut().find(|t| t.name == m.track) {
                Some(t) => t.events.push(m.event),
                None => tracks.push(Track {
                    name: m.track.to_string(),
                    events: vec![m.event],
                    dropped: 0,
                }),
            }
        }
        Trace { tracks }
    }

    /// Clears the ring (tests).
    pub fn reset(&self) {
        self.ring.lock().expect("flight ring poisoned").clear();
        self.evicted.store(0, Ordering::Relaxed);
        self.dumps.store(0, Ordering::Relaxed);
    }

    /// Serializes the black box as a native trace document with flight
    /// sidecar keys: `reason` (why the dump happened) and `state` (a
    /// caller-supplied JSON value — metrics snapshot, membership —
    /// or `null`). `regent-prof` imports it like any written trace.
    pub fn to_document(&self, reason: &str, state_json: Option<&str>) -> String {
        let trace = self.snapshot();
        let mut out = String::from("{\"regentTrace\":1,\"flightReason\":\"");
        escape_into(&mut out, reason);
        out.push_str("\",\"flightEvicted\":");
        out.push_str(&self.evicted().to_string());
        out.push_str(",\"flightState\":");
        match state_json {
            Some(s) if !s.is_empty() => out.push_str(s),
            _ => out.push_str("null"),
        }
        out.push_str(",\"tracks\":");
        out.push_str(&tracks_json(&trace));
        out.push('}');
        out
    }

    /// Dumps the black box into `dir` as
    /// `flight-<reason>-<seq>.trace.json` and returns the path.
    /// Creates `dir` if needed; failures are reported to stderr, never
    /// fatal (the flight recorder must not turn a crash into a worse
    /// crash). Returns `None` when disabled or on write failure.
    pub fn dump(
        &self,
        dir: &std::path::Path,
        reason: &str,
        state_json: Option<&str>,
    ) -> Option<std::path::PathBuf> {
        if !self.enabled {
            return None;
        }
        let seq = self.dumps.fetch_add(1, Ordering::Relaxed);
        let slug: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .take(48)
            .collect();
        let path = dir.join(format!("flight-{slug}-{seq}.trace.json"));
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("flight recorder: cannot create {}: {e}", dir.display());
            return None;
        }
        match std::fs::write(&path, self.to_document(reason, state_json)) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("flight recorder: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// [`FlightRecorder::dump`] into the directory named by
    /// `REGENT_FLIGHT_DIR`; a missing variable makes this a no-op
    /// (deployments opt into on-disk artifacts explicitly).
    pub fn dump_env(&self, reason: &str, state_json: Option<&str>) -> Option<std::path::PathBuf> {
        let dir = std::env::var_os("REGENT_FLIGHT_DIR")?;
        self.dump(std::path::Path::new(&dir), reason, state_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::import_trace;

    fn fresh(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            enabled: true,
            capacity,
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    #[test]
    fn notes_group_by_track_and_keep_order() {
        let rec = fresh(8);
        rec.note("flight", EventKind::Mark { name: "a" });
        rec.note(
            "failover",
            EventKind::PeerDeath {
                shard: 1,
                cause: 0,
                epoch: 2,
            },
        );
        rec.note("flight", EventKind::Mark { name: "b" });
        let t = rec.snapshot();
        assert_eq!(t.tracks.len(), 2);
        let f = t.track("flight").unwrap();
        assert_eq!(f.events.len(), 2);
        assert!(matches!(f.events[0].kind, EventKind::Mark { name: "a" }));
        assert!(matches!(f.events[1].kind, EventKind::Mark { name: "b" }));
        assert_eq!(f.dropped, 0);
        assert!(f.events[0].ts <= f.events[1].ts);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let rec = fresh(3);
        for i in 0..5u64 {
            rec.note_at(
                "flight",
                Event {
                    ts: i,
                    dur: 0,
                    kind: EventKind::StepBegin { step: i },
                },
            );
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        let t = rec.snapshot();
        assert!(matches!(
            t.tracks[0].events[0].kind,
            EventKind::StepBegin { step: 2 }
        ));
    }

    #[test]
    fn document_roundtrips_through_import() {
        let rec = fresh(8);
        rec.note(
            "failover",
            EventKind::MembershipChange {
                from_shards: 4,
                to_shards: 3,
                dead_shard: 1,
                epoch: 2,
            },
        );
        let doc = rec.to_document("peer death: shard 1", Some("{\"jobs\":3}"));
        let back = import_trace(&doc).expect("flight document is a valid native trace");
        assert_eq!(back.tracks.len(), 1);
        assert_eq!(back.tracks[0].name, "failover");
        // Sidecar keys survive as plain JSON (spot-check the raw text).
        assert!(doc.contains("\"flightReason\":\"peer death: shard 1\""));
        assert!(doc.contains("\"flightState\":{\"jobs\":3}"));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder {
            enabled: false,
            ..fresh(8)
        };
        rec.note("flight", EventKind::Mark { name: "m" });
        assert!(rec.is_empty());
        assert!(rec
            .dump(std::path::Path::new("/nonexistent"), "x", None)
            .is_none());
    }

    #[test]
    fn dump_writes_a_file() {
        let rec = fresh(8);
        rec.note("flight", EventKind::Mark { name: "m" });
        let dir = std::env::temp_dir().join(format!("regent-flight-test-{}", std::process::id()));
        let path = rec
            .dump(&dir, "unit test / dump", None)
            .expect("dump succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(import_trace(&text).is_ok());
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("flight-unit-test---dump-0"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
