//! Happens-before graph reconstruction from a collected trace.
//!
//! Nodes are the *synchronizing* events of the trace (task launches and
//! runs, copy issue/apply pairs, barrier and collective generations,
//! drains). Edges come from:
//!
//! * **program order** — consecutive nodes on the same track were
//!   recorded by the same thread;
//! * **launch order** — `TaskLaunch(l, p)` precedes `TaskRun(l, p)`;
//! * **recorded dependences** — each [`EventKind::DepEdge`] event adds
//!   `TaskRun(from) → TaskRun(to)`;
//! * **copies** — `CopyIssue(c, pair, seq)` precedes the matching
//!   `CopyApply(c, pair, seq)` (the point-to-point synchronization of
//!   the consumer-applied protocol, §3.4);
//! * **barriers / collectives** — the *o*-th arrival on every track
//!   precedes the *o*-th departure on every track (sound because
//!   control flow is replicated, so shards execute synchronization
//!   operations in the same order);
//! * **drains** — every task launched on a track before a
//!   [`EventKind::Drain`] has its run ordered before the drain.
//!
//! The graph is acyclic for any well-formed execution;
//! [`build_graph`] returns `Err` if a cycle is detected (a corrupted
//! log). Reachability is precomputed as per-node bitsets in topological
//! order — quadratic in node count, sized for validation-scale traces
//! (the Spy consumer), not for profiling-scale ones.

use crate::event::{Event, EventKind};
use crate::tracer::Trace;
use std::collections::HashMap;

/// One graph node: a synchronizing event and where it was recorded.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Index of the track in the source [`Trace`].
    pub track: usize,
    /// Index of the event within its track (orders nodes recorded by
    /// the same thread).
    pub idx: usize,
    /// The event itself.
    pub event: Event,
}

/// The reconstructed happens-before graph.
pub struct EventGraph {
    /// All nodes, in trace scan order.
    pub nodes: Vec<Node>,
    /// `CopyApply` nodes with no matching `CopyIssue` — evidence of a
    /// corrupted or truncated log.
    pub unmatched_applies: Vec<u32>,
    succ: Vec<Vec<u32>>,
    runs: HashMap<(u32, u32), u32>,
    reach: Vec<Vec<u64>>,
}

impl EventGraph {
    /// Node executing task `(launch, pos)`, if its run was recorded.
    pub fn run_of(&self, launch: u32, pos: u32) -> Option<u32> {
        self.runs.get(&(launch, pos)).copied()
    }

    /// Does `a` happen before (or equal) `b`?
    pub fn reaches(&self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        let w = (b / 64) as usize;
        self.reach[a as usize][w] & (1u64 << (b % 64)) != 0
    }

    /// Direct successors of `a`.
    pub fn successors(&self, a: u32) -> &[u32] {
        &self.succ[a as usize]
    }

    /// Longest duration-weighted path through the graph: total
    /// nanoseconds and the node sequence, source to sink.
    pub fn critical_path(&self) -> (u64, Vec<u32>) {
        let n = self.nodes.len();
        if n == 0 {
            return (0, Vec::new());
        }
        // Topological order again (the graph is known acyclic here).
        let order = toposort(&self.succ).expect("validated acyclic");
        // best[v] = max cost of a path ending at v, inclusive of v.
        let mut best = vec![0u64; n];
        let mut prev = vec![u32::MAX; n];
        for &v in &order {
            let vi = v as usize;
            best[vi] += self.nodes[vi].event.dur;
            for &s in &self.succ[vi] {
                let si = s as usize;
                if best[vi] > best[si] {
                    best[si] = best[vi];
                    prev[si] = v;
                }
            }
        }
        let (mut at, _) = best
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, c)| (i as u32, *c))
            .unwrap();
        let total = best[at as usize];
        let mut path = vec![at];
        while prev[at as usize] != u32::MAX {
            at = prev[at as usize];
            path.push(at);
        }
        path.reverse();
        (total, path)
    }
}

fn is_node(kind: &EventKind) -> bool {
    matches!(
        kind,
        EventKind::TaskLaunch { .. }
            | EventKind::TaskRun { .. }
            | EventKind::Drain
            | EventKind::CopyIssue { .. }
            | EventKind::CopyApply { .. }
            | EventKind::BarrierArrive { .. }
            | EventKind::BarrierLeave { .. }
            | EventKind::CollectiveArrive { .. }
            | EventKind::CollectiveLeave { .. }
            | EventKind::DepAnalysis { .. }
            | EventKind::MemoReplay { .. }
            | EventKind::LogAppend { .. }
            | EventKind::LogCombine { .. }
            | EventKind::LogConsume { .. }
    )
}

/// Reconstructs the happens-before graph of `trace`. `Err` means the
/// log is not a well-formed execution record (an ordering cycle).
pub fn build_graph(trace: &Trace) -> Result<EventGraph, String> {
    let mut nodes = Vec::new();
    for (ti, track) in trace.tracks.iter().enumerate() {
        for (ei, e) in track.events.iter().enumerate() {
            if is_node(&e.kind) {
                nodes.push(Node {
                    track: ti,
                    idx: ei,
                    event: *e,
                });
            }
        }
    }
    let n = nodes.len();
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];

    // Index maps built in one scan.
    let mut runs: HashMap<(u32, u32), u32> = HashMap::new();
    let mut launches: HashMap<(u32, u32), u32> = HashMap::new();
    let mut issues: HashMap<(u32, u32, u32), Vec<u32>> = HashMap::new();
    let mut applies: HashMap<(u32, u32, u32), Vec<u32>> = HashMap::new();
    // Barrier / collective groups, keyed by per-track occurrence index
    // (replicated control flow makes occurrence counts line up).
    let mut bar_arrive: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut bar_leave: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut col_arrive: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut col_leave: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut occ: HashMap<(usize, u8), u64> = HashMap::new();
    let bump = |occ: &mut HashMap<(usize, u8), u64>, track: usize, which: u8| -> u64 {
        let c = occ.entry((track, which)).or_insert(0);
        let v = *c;
        *c += 1;
        v
    };

    for (i, node) in nodes.iter().enumerate() {
        let i = i as u32;
        match node.event.kind {
            EventKind::TaskRun { launch, pos, .. } => {
                runs.insert((launch, pos), i);
            }
            EventKind::TaskLaunch { launch, pos, .. } => {
                launches.insert((launch, pos), i);
            }
            EventKind::CopyIssue {
                copy, pair, seq, ..
            } => issues.entry((copy, pair, seq)).or_default().push(i),
            EventKind::CopyApply {
                copy, pair, seq, ..
            } => applies.entry((copy, pair, seq)).or_default().push(i),
            EventKind::BarrierArrive { .. } => {
                let o = bump(&mut occ, node.track, 0);
                bar_arrive.entry(o).or_default().push(i);
            }
            EventKind::BarrierLeave { .. } => {
                let o = bump(&mut occ, node.track, 1);
                bar_leave.entry(o).or_default().push(i);
            }
            EventKind::CollectiveArrive { .. } => {
                let o = bump(&mut occ, node.track, 2);
                col_arrive.entry(o).or_default().push(i);
            }
            EventKind::CollectiveLeave { .. } => {
                let o = bump(&mut occ, node.track, 3);
                col_leave.entry(o).or_default().push(i);
            }
            _ => {}
        }
    }

    // Program order: consecutive nodes on the same track.
    let mut last_on_track: HashMap<usize, u32> = HashMap::new();
    // Drain bookkeeping: launches on a track since its last drain.
    let mut pending: HashMap<usize, Vec<(u32, u32)>> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let i = i as u32;
        if let Some(&p) = last_on_track.get(&node.track) {
            succ[p as usize].push(i);
        }
        last_on_track.insert(node.track, i);
        match node.event.kind {
            EventKind::TaskLaunch { launch, pos, .. } => {
                pending.entry(node.track).or_default().push((launch, pos));
            }
            EventKind::Drain => {
                for (l, p) in pending.entry(node.track).or_default().drain(..) {
                    if let Some(&r) = runs.get(&(l, p)) {
                        if r != i {
                            succ[r as usize].push(i);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Launch precedes run.
    for ((l, p), &launch_node) in &launches {
        if let Some(&run_node) = runs.get(&(*l, *p)) {
            if launch_node != run_node {
                succ[launch_node as usize].push(run_node);
            }
        }
    }

    // Recorded dependence edges (events, not nodes — scan the trace).
    for track in &trace.tracks {
        for e in &track.events {
            if let EventKind::DepEdge {
                from_launch,
                from_pos,
                to_launch,
                to_pos,
            } = e.kind
            {
                if let (Some(&a), Some(&b)) = (
                    runs.get(&(from_launch, from_pos)),
                    runs.get(&(to_launch, to_pos)),
                ) {
                    if a != b {
                        succ[a as usize].push(b);
                    }
                }
            }
        }
    }

    // Copy issue → matching apply; applies without an issue are
    // reported as corruption evidence.
    let mut unmatched_applies = Vec::new();
    for (key, apps) in &applies {
        let iss = issues.get(key).map(|v| v.as_slice()).unwrap_or(&[]);
        for (k, &a) in apps.iter().enumerate() {
            match iss.get(k) {
                Some(&s) => succ[s as usize].push(a),
                None => unmatched_applies.push(a),
            }
        }
    }
    unmatched_applies.sort_unstable();

    // Every arrival at synchronization occurrence o precedes every
    // departure from it.
    for (arrivals, leaves) in [(&bar_arrive, &bar_leave), (&col_arrive, &col_leave)] {
        for (o, arr) in arrivals {
            if let Some(lvs) = leaves.get(o) {
                for &a in arr {
                    for &l in lvs {
                        if a != l {
                            succ[a as usize].push(l);
                        }
                    }
                }
            }
        }
    }

    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }

    let topo = toposort(&succ).ok_or_else(|| {
        "trace is not a valid execution record: happens-before cycle detected".to_string()
    })?;

    // Reachability bitsets, filled source-to-sink so each node's row is
    // complete before its successors read it.
    let words = n.div_ceil(64);
    let mut reach = vec![vec![0u64; words]; n];
    for &v in topo.iter().rev() {
        let vi = v as usize;
        let mut row = vec![0u64; words];
        for &s in &succ[vi] {
            let si = s as usize;
            row[si / 64] |= 1u64 << (si % 64);
            for (w, bits) in reach[si].iter().enumerate() {
                row[w] |= bits;
            }
        }
        reach[vi] = row;
    }

    Ok(EventGraph {
        nodes,
        unmatched_applies,
        succ,
        runs,
        reach,
    })
}

/// Kahn's algorithm; `None` on a cycle.
fn toposort(succ: &[Vec<u32>]) -> Option<Vec<u32>> {
    let n = succ.len();
    let mut indeg = vec![0u32; n];
    for s in succ {
        for &t in s {
            indeg[t as usize] += 1;
        }
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &s in &succ[v as usize] {
            let si = s as usize;
            indeg[si] -= 1;
            if indeg[si] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Trace, Track};

    fn ev(ts: u64, dur: u64, kind: EventKind) -> Event {
        Event { ts, dur, kind }
    }

    fn run(l: u32, p: u32) -> EventKind {
        EventKind::TaskRun {
            launch: l,
            pos: p,
            task: 0,
        }
    }

    fn launch(l: u32, p: u32) -> EventKind {
        EventKind::TaskLaunch {
            launch: l,
            pos: p,
            task: 0,
        }
    }

    fn trace_of(tracks: Vec<(&str, Vec<Event>)>) -> Trace {
        Trace {
            tracks: tracks
                .into_iter()
                .map(|(name, events)| Track {
                    name: name.into(),
                    events,
                    dropped: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn program_order_and_launch_edges() {
        let trace = trace_of(vec![
            (
                "control",
                vec![ev(0, 0, launch(0, 0)), ev(1, 0, launch(1, 0))],
            ),
            ("worker", vec![ev(2, 5, run(0, 0)), ev(8, 5, run(1, 0))]),
        ]);
        let g = build_graph(&trace).unwrap();
        let l0 = 0;
        let l1 = 1;
        let r0 = g.run_of(0, 0).unwrap();
        let r1 = g.run_of(1, 0).unwrap();
        assert!(g.reaches(l0, l1));
        assert!(g.reaches(l0, r0));
        assert!(g.reaches(l1, r1));
        assert!(g.reaches(r0, r1), "program order on the worker track");
        assert!(!g.reaches(r1, r0));
        assert!(!g.reaches(r0, l1), "no edge from a run back to control");
    }

    #[test]
    fn dep_edges_and_drain() {
        let trace = trace_of(vec![
            (
                "control",
                vec![
                    ev(0, 0, launch(0, 0)),
                    ev(1, 0, launch(1, 0)),
                    ev(
                        2,
                        0,
                        EventKind::DepEdge {
                            from_launch: 0,
                            from_pos: 0,
                            to_launch: 1,
                            to_pos: 0,
                        },
                    ),
                    ev(3, 0, EventKind::Drain),
                ],
            ),
            ("w0", vec![ev(2, 5, run(0, 0))]),
            ("w1", vec![ev(2, 5, run(1, 0))]),
        ]);
        let g = build_graph(&trace).unwrap();
        let r0 = g.run_of(0, 0).unwrap();
        let r1 = g.run_of(1, 0).unwrap();
        assert!(g.reaches(r0, r1), "recorded dependence edge");
        // Both runs reach the drain.
        let drain = g
            .nodes
            .iter()
            .position(|n| matches!(n.event.kind, EventKind::Drain))
            .unwrap() as u32;
        assert!(g.reaches(r0, drain));
        assert!(g.reaches(r1, drain));
    }

    #[test]
    fn copy_edges_match_by_occurrence() {
        let trace = trace_of(vec![
            (
                "shard-0",
                vec![ev(
                    0,
                    1,
                    EventKind::CopyIssue {
                        copy: 7,
                        pair: 0,
                        seq: 0,
                        elements: 4,
                        dst_shard: 1,
                    },
                )],
            ),
            (
                "shard-1",
                vec![ev(
                    5,
                    1,
                    EventKind::CopyApply {
                        copy: 7,
                        pair: 0,
                        seq: 0,
                        region: 3,
                        inst: 99,
                        fields: 1,
                        reduce: false,
                    },
                )],
            ),
        ]);
        let g = build_graph(&trace).unwrap();
        assert!(g.reaches(0, 1), "issue happens-before its apply");
        assert!(g.unmatched_applies.is_empty());
    }

    #[test]
    fn unmatched_apply_is_reported() {
        let trace = trace_of(vec![(
            "shard-1",
            vec![ev(
                5,
                1,
                EventKind::CopyApply {
                    copy: 7,
                    pair: 0,
                    seq: 0,
                    region: 3,
                    inst: 99,
                    fields: 1,
                    reduce: false,
                },
            )],
        )]);
        let g = build_graph(&trace).unwrap();
        assert_eq!(g.unmatched_applies.len(), 1);
    }

    #[test]
    fn collective_orders_all_arrivals_before_all_leaves() {
        let arrive = EventKind::CollectiveArrive { generation: 0 };
        let leave = EventKind::CollectiveLeave { generation: 0 };
        let trace = trace_of(vec![
            (
                "shard-0",
                vec![ev(0, 0, run(0, 0)), ev(1, 1, arrive), ev(2, 0, leave)],
            ),
            (
                "shard-1",
                vec![ev(0, 0, run(0, 1)), ev(1, 1, arrive), ev(2, 0, leave)],
            ),
        ]);
        let g = build_graph(&trace).unwrap();
        let r0 = g.run_of(0, 0).unwrap();
        let r1 = g.run_of(0, 1).unwrap();
        // Work before shard 0's arrival is visible after shard 1's
        // departure, and vice versa.
        let leave1 = 5; // last node of shard-1's track
        let leave0 = 2;
        assert!(g.reaches(r0, leave1));
        assert!(g.reaches(r1, leave0));
        // But runs on different shards stay unordered.
        assert!(!g.reaches(r0, r1));
        assert!(!g.reaches(r1, r0));
    }

    #[test]
    fn cycle_is_rejected() {
        // Two dependence edges forming a cycle between two runs.
        let dep = |a: u32, b: u32| EventKind::DepEdge {
            from_launch: a,
            from_pos: 0,
            to_launch: b,
            to_pos: 0,
        };
        let trace = trace_of(vec![
            ("w0", vec![ev(0, 1, run(0, 0))]),
            ("w1", vec![ev(0, 1, run(1, 0))]),
            ("control", vec![ev(2, 0, dep(0, 1)), ev(3, 0, dep(1, 0))]),
        ]);
        assert!(build_graph(&trace).is_err());
    }

    #[test]
    fn critical_path_is_duration_weighted() {
        let trace = trace_of(vec![
            (
                "control",
                vec![ev(0, 0, launch(0, 0)), ev(1, 0, launch(1, 0))],
            ),
            ("w0", vec![ev(2, 100, run(0, 0))]),
            ("w1", vec![ev(2, 10, run(1, 0))]),
        ]);
        let g = build_graph(&trace).unwrap();
        let (cost, path) = g.critical_path();
        assert_eq!(cost, 100);
        let last = *path.last().unwrap();
        assert!(matches!(
            g.nodes[last as usize].event.kind,
            EventKind::TaskRun { launch: 0, .. }
        ));
    }
}
