//! A single-producer ring buffer for events.
//!
//! The ring grows lazily up to its capacity (no large up-front
//! allocation for short runs), then wraps, overwriting the *oldest*
//! events and counting them as dropped. Draining returns events in
//! recording order. The buffer is owned by exactly one recording
//! thread, so there is no synchronization at all.

/// A bounded ring of `T` that overwrites its oldest entries when full.
#[derive(Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `cap` elements (`cap > 0`).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Ring {
            buf: Vec::new(),
            head: 0,
            cap,
            dropped: 0,
        }
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Elements overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends `v`, overwriting the oldest element when at capacity.
    pub fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Removes and returns all elements in recording order (oldest
    /// first), resetting the ring (the drop counter survives).
    pub fn drain_ordered(&mut self) -> Vec<T> {
        let head = self.head;
        self.head = 0;
        let mut v = std::mem::take(&mut self.buf);
        v.rotate_left(head);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_below_capacity_preserves_order() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.drain_ordered(), vec![0, 1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn wrapping_drops_oldest_keeps_order() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 6);
        // The four newest, oldest-first.
        assert_eq!(r.drain_ordered(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn reusable_after_drain() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.drain_ordered(), vec![2, 3, 4]);
        r.push(99);
        r.push(100);
        assert_eq!(r.drain_ordered(), vec![99, 100]);
        assert_eq!(r.dropped(), 2, "drop counter survives draining");
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut r = Ring::new(3);
        for i in 0..3 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 0);
        r.push(3);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.drain_ordered(), vec![1, 2, 3]);
    }
}
