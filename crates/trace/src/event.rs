//! The event schema: everything the executors, the simulator, and the
//! CR compiler record.
//!
//! Events are `Copy` and contain no owned data — names are `&'static
//! str`, identities are small integers — so recording one is a ring
//! write with no allocation.
//!
//! ## Identity conventions
//!
//! * `launch` — the *dynamic* launch sequence number: how many launch
//!   statements the control flow has executed before this one. Control
//!   flow is replicated across SPMD shards (§3.5), so shards assign
//!   identical numbers to the same logical launch, which is what lets
//!   the Spy validator correlate tasks across shard-local event logs.
//! * `pos` — the task's position in its launch domain (0 for single
//!   launches).
//! * `inst` — a hash identifying the *physical instance* accessed.
//!   Shared-memory executors hash the root region; the distributed
//!   SPMD executor hashes the shard-local instance key. Two accesses
//!   with equal `inst` touch the same memory.
//! * `fields` — a bitmask of field ids (bit `id % 64`); two accesses
//!   can only conflict if their masks intersect.

/// Privilege of a recorded region access (mirrors
/// `regent_ir::Privilege` without depending on it — this crate is a
/// leaf).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivCode {
    /// Read-only access.
    Read,
    /// Read-write access.
    Write,
    /// Reduction access; the payload discriminates the operator (two
    /// reductions conflict unless they use the same operator).
    Reduce(u8),
}

impl PrivCode {
    /// Does this privilege modify the region?
    pub fn mutates(self) -> bool {
        !matches!(self, PrivCode::Read)
    }

    /// Can two accesses with these privileges run unordered (§2.1)?
    pub fn compatible(self, other: PrivCode) -> bool {
        match (self, other) {
            (PrivCode::Read, PrivCode::Read) => true,
            (PrivCode::Reduce(a), PrivCode::Reduce(b)) => a == b,
            _ => false,
        }
    }
}

/// Where a silent-data-corruption event was injected or caught.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CorruptSite {
    /// A serialized point-to-point exchange payload (ghost-cell copy).
    Exchange,
    /// A resident physical instance buffer.
    Resident,
    /// A dynamic-collective contribution (§4.4 scalar reduction).
    Collective,
}

/// What kind of work a simulated task represents (used to attribute
/// virtual time in the discrete-event simulator).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimKind {
    /// A shard's task-launch operation (CR: O(1) per shard).
    Launch,
    /// Control-thread dependence analysis (implicit: O(N) per step).
    Analysis,
    /// Application kernel compute.
    Compute,
    /// NIC serialization / message transfer.
    Copy,
    /// Collective participation.
    Collective,
    /// Shared-log control work: sequencer append/combine and replica
    /// batch consumption (`log_exec`).
    Log,
    /// Anything untagged.
    Other,
}

/// One structured event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// Control thread (or shard) issued a task.
    TaskLaunch {
        /// Dynamic launch sequence number.
        launch: u32,
        /// Position in the launch domain.
        pos: u32,
        /// Task declaration id.
        task: u32,
    },
    /// A worker (or shard) executed the task's kernel; the span covers
    /// the kernel run.
    TaskRun {
        /// Dynamic launch sequence number.
        launch: u32,
        /// Position in the launch domain.
        pos: u32,
        /// Task declaration id.
        task: u32,
    },
    /// One region access of task `(launch, pos)` (emitted adjacent to
    /// its launch or run event).
    TaskAccess {
        /// Dynamic launch sequence number of the accessing task.
        launch: u32,
        /// Position of the accessing task in its launch domain.
        pos: u32,
        /// Logical region accessed.
        region: u32,
        /// Physical instance identity hash.
        inst: u64,
        /// Field bitmask (see module docs).
        fields: u64,
        /// Access privilege.
        privilege: PrivCode,
    },
    /// Dynamic dependence analysis performed by the implicit executor's
    /// control thread for one task — the per-task cost that grows with
    /// the in-flight window (§1, §4.1).
    DepAnalysis {
        /// Dynamic launch sequence number of the analyzed task.
        launch: u32,
        /// Position of the analyzed task.
        pos: u32,
        /// Pairwise region checks performed.
        checks: u32,
    },
    /// A dependence edge the control thread recorded (or observed
    /// already satisfied) between two tasks.
    DepEdge {
        /// Launch sequence of the predecessor task.
        from_launch: u32,
        /// Position of the predecessor task.
        from_pos: u32,
        /// Launch sequence of the successor task.
        to_launch: u32,
        /// Position of the successor task.
        to_pos: u32,
    },
    /// The control thread drained the worker pool (waited for all
    /// outstanding tasks): everything launched before this point
    /// happened-before everything after it.
    Drain,
    /// Producer side of a copy pair: extract + send. `seq` counts
    /// dynamic occurrences of the same (copy, pair), matching the
    /// consumer's count — that pairing *is* the point-to-point
    /// synchronization of §3.4.
    CopyIssue {
        /// Static copy statement id.
        copy: u32,
        /// Pair index within the copy's intersection.
        pair: u32,
        /// Dynamic occurrence number of this (copy, pair).
        seq: u32,
        /// Elements transferred.
        elements: u64,
        /// Destination shard.
        dst_shard: u32,
    },
    /// Consumer side of a copy pair: blocking receive + apply. The
    /// span covers the wait, so copy stalls are visible in profiles.
    CopyApply {
        /// Static copy statement id.
        copy: u32,
        /// Pair index within the copy's intersection.
        pair: u32,
        /// Dynamic occurrence number of this (copy, pair).
        seq: u32,
        /// Destination logical region written.
        region: u32,
        /// Destination physical instance hash.
        inst: u64,
        /// Field bitmask of the copied fields.
        fields: u64,
        /// True for reduction-fold applies (§4.3).
        reduce: bool,
    },
    /// Arrived at a barrier generation.
    BarrierArrive {
        /// Barrier generation number.
        generation: u64,
    },
    /// Released from a barrier generation.
    BarrierLeave {
        /// Barrier generation number.
        generation: u64,
    },
    /// Contributed to a dynamic collective generation (§4.4).
    CollectiveArrive {
        /// Collective generation number.
        generation: u64,
    },
    /// Received a dynamic collective's folded result.
    CollectiveLeave {
        /// Collective generation number.
        generation: u64,
    },
    /// An outermost-loop iteration began on this track (the timestep
    /// boundary the per-step cost analysis groups by).
    StepBegin {
        /// Zero-based timestep number.
        step: u64,
    },
    /// A shard snapshotted its region instances for checkpoint–restart
    /// (span covers the state clone).
    CheckpointSave {
        /// Epoch (outermost-loop iteration) the snapshot captures the
        /// start of.
        epoch: u64,
    },
    /// A shard rolled back to its latest snapshot after an injected
    /// failure (span covers the state restore).
    CheckpointRestore {
        /// Epoch the shard was in when the rollback triggered.
        epoch: u64,
        /// Epoch execution resumes from (the snapshot's epoch).
        to_epoch: u64,
    },
    /// An injected shard failure fired (instant).
    ShardCrash {
        /// The shard the fault plan killed.
        shard: u32,
        /// Epoch at whose start the crash was injected.
        epoch: u64,
    },
    /// A shard left the membership (instant): an injected kill, an
    /// unrecoverable panic, or a hang-timeout blame. Unlike
    /// [`EventKind::ShardCrash`] (rollback on unchanged membership)
    /// this marks a *membership* loss the failover machinery responds
    /// to. `cause` uses the [`crate::prof`] convention: 0 = killed,
    /// 1 = panicked, 2 = hung.
    PeerDeath {
        /// The shard that died.
        shard: u32,
        /// Cause code (0 killed / 1 panicked / 2 hung).
        cause: u32,
        /// Epoch at which the death was detected (kill epoch for
        /// injected kills, 0 when unknown).
        epoch: u64,
    },
    /// The elastic membership changed: survivors agreed on a shrunken
    /// shard count and a new membership epoch (instant, driver track).
    MembershipChange {
        /// Shards before the change.
        from_shards: u32,
        /// Shards after the change.
        to_shards: u32,
        /// The shard removed from the membership.
        dead_shard: u32,
        /// Checkpoint epoch the new membership resumes from.
        epoch: u64,
    },
    /// Survivor-side reconstruction of a lost shard's state: the last
    /// coordinated checkpoint was remapped onto the shrunken membership
    /// (span covers the redistribution; driver track).
    FailoverReconstruct {
        /// Shards in the new membership.
        to_shards: u32,
        /// Instances redistributed across the survivors.
        insts: u32,
        /// Checkpoint epoch execution resumes from.
        epoch: u64,
    },
    /// A checksum verification caught silent data corruption. For
    /// [`CorruptSite::Exchange`] / [`CorruptSite::Collective`] sites,
    /// `(id, sub)` is the (copy, pair) / (scalar var, occurrence)
    /// identity of the corrupted payload; for
    /// [`CorruptSite::Resident`] sites `(id, sub)` is unused (0).
    CorruptDetected {
        /// Where the corruption was caught.
        site: CorruptSite,
        /// Payload identity (see above).
        id: u32,
        /// Payload sub-identity (see above).
        sub: u32,
        /// Epoch the detecting shard was executing.
        epoch: u64,
    },
    /// A detected corruption was repaired locally — the clean payload
    /// arrived by retransmission without disturbing peer shards. Always
    /// follows one or more matching [`EventKind::CorruptDetected`]
    /// events on the same track.
    CorruptRepaired {
        /// Where the corruption had been caught.
        site: CorruptSite,
        /// Payload identity (matches the detection event).
        id: u32,
        /// Payload sub-identity (matches the detection event).
        sub: u32,
        /// Corrupted delivery attempts before the clean one.
        attempts: u32,
    },
    /// A resident-instance corruption could not be repaired locally and
    /// escalated to the coordinated checkpoint rollback: every shard
    /// restores its latest snapshot (the subsequent
    /// [`EventKind::CheckpointRestore`] spans) and memoized templates
    /// are invalidated.
    CorruptEscalated {
        /// The shard whose resident instance was corrupted.
        shard: u32,
        /// Epoch during which the corruption occurred.
        epoch: u64,
    },
    /// The implicit executor captured an epoch's dependence analysis as
    /// a reusable template (trace memoization). Emitted at the epoch
    /// boundary where the template was stored.
    MemoCapture {
        /// Epoch (outermost-loop iteration) the template was captured
        /// from.
        epoch: u64,
        /// Structural hash of the epoch's launch sequence (the cache
        /// key).
        key: u64,
        /// Point tasks covered by the template.
        tasks: u32,
    },
    /// A whole epoch replayed from a memoized template: every launch
    /// matched the template and no dependence analysis ran.
    MemoHit {
        /// Epoch that replayed.
        epoch: u64,
        /// Cache key of the replayed template.
        key: u64,
        /// Point tasks replayed.
        tasks: u32,
    },
    /// A replay attempt aborted: the epoch's launch sequence diverged
    /// from the predicted template and the executor fell back to full
    /// dependence analysis for the remainder of the epoch.
    MemoMiss {
        /// Epoch in which the divergence was observed.
        epoch: u64,
        /// Launch index (within the epoch) where the template stopped
        /// matching.
        at: u32,
    },
    /// The template cache was invalidated: the region forest's version
    /// changed since capture (a partition or region was created), so
    /// every memoized schedule went stale.
    MemoInvalidate {
        /// Templates dropped from the cache.
        templates: u32,
    },
    /// One task's dependence bookkeeping replayed from a memoized
    /// template instead of analyzed (span covers the edge replay) — the
    /// memo-path counterpart of [`EventKind::DepAnalysis`].
    MemoReplay {
        /// Dynamic launch sequence number of the replayed task.
        launch: u32,
        /// Position of the replayed task.
        pos: u32,
    },
    /// The shared-log sequencer appended a segment of launch records
    /// to the operation log (instant; paired with the
    /// [`EventKind::LogCombine`] span covering the combiner round that
    /// published it).
    LogAppend {
        /// Epoch (outermost-loop iteration) the records belong to.
        epoch: u64,
        /// Log index of the first batch the segment was published as.
        batch: u32,
        /// Records appended in this segment.
        records: u32,
    },
    /// The flat combiner ran: drained the producer slots and published
    /// one or more batches (span covers the combining round).
    LogCombine {
        /// Log index of the first batch published by this round.
        batch: u32,
        /// Records combined across the published batches.
        records: u32,
    },
    /// A replica leader consumed one log batch: advanced its read
    /// cursor and ran the once-per-replica dependence analysis.
    LogConsume {
        /// Consuming replica id.
        replica: u32,
        /// Log index of the consumed batch.
        batch: u32,
        /// Records in the batch.
        records: u32,
        /// Cursor lag when the batch was taken: published batches not
        /// yet consumed by this replica (including this one).
        lag: u32,
    },
    /// A compiler pass of the CR pipeline (span).
    Pass {
        /// Pass name.
        name: &'static str,
    },
    /// A simulated task's service interval, in *virtual* time.
    SimTask {
        /// What the simulated work represents.
        kind: SimKind,
        /// Node the serving resource belongs to.
        node: u32,
        /// Timestep the task belongs to.
        step: u32,
    },
    /// The service supervisor admitted a job into a shard pool. The
    /// span covers the time the job spent waiting in the admission
    /// queue (queue-wait blame), ending when a worker picked it up.
    JobAdmit {
        /// Service-assigned job sequence number.
        job: u64,
        /// Tenant the job belongs to.
        tenant: u32,
        /// Queue depth observed at admission (including this job).
        queued: u32,
    },
    /// Admission control rejected a job: projected queue cost exceeded
    /// the shed budget and the job was turned away with `Overloaded`
    /// (instant).
    JobShed {
        /// Service-assigned job sequence number.
        job: u64,
        /// Tenant the job belongs to.
        tenant: u32,
        /// Queue depth observed at rejection.
        queued: u32,
    },
    /// A transiently failed job was re-queued for another attempt after
    /// seeded exponential backoff (instant; fires once per retry, so
    /// `attempt` counts from 1).
    JobRetry {
        /// Service-assigned job sequence number.
        job: u64,
        /// Tenant the job belongs to.
        tenant: u32,
        /// Attempt number this retry begins (first retry = 1).
        attempt: u32,
    },
    /// Graceful degradation resized a tenant's shard allocation under
    /// sustained pressure (instant).
    JobDegrade {
        /// Tenant whose allocation changed.
        tenant: u32,
        /// Shards allocated before the change.
        from_shards: u32,
        /// Shards allocated after the change.
        to_shards: u32,
    },
    /// A named scalar sample.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
    /// A named instant marker.
    Mark {
        /// Marker name.
        name: &'static str,
    },
}

/// One recorded event: a half-open interval `[ts, ts + dur)` in
/// nanoseconds (instant events have `dur == 0`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Event {
    /// Start timestamp, nanoseconds from the tracer epoch.
    pub ts: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Folds field ids into the 64-bit mask convention used by
/// [`EventKind::TaskAccess`] / [`EventKind::CopyApply`]. Ids ≥ 64 wrap
/// (conservative: may alias, never misses a real conflict).
pub fn fields_mask(ids: impl IntoIterator<Item = u32>) -> u64 {
    let mut m = 0u64;
    for id in ids {
        m |= 1u64 << (id % 64);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_compatibility() {
        assert!(PrivCode::Read.compatible(PrivCode::Read));
        assert!(PrivCode::Reduce(1).compatible(PrivCode::Reduce(1)));
        assert!(!PrivCode::Reduce(1).compatible(PrivCode::Reduce(2)));
        assert!(!PrivCode::Read.compatible(PrivCode::Write));
        assert!(!PrivCode::Write.compatible(PrivCode::Write));
        assert!(PrivCode::Write.mutates());
        assert!(PrivCode::Reduce(0).mutates());
        assert!(!PrivCode::Read.mutates());
    }

    #[test]
    fn field_masks() {
        assert_eq!(fields_mask([0, 1]), 0b11);
        assert_eq!(fields_mask([65]), 0b10); // wraps
        assert_eq!(fields_mask([]) & fields_mask([3]), 0);
    }
}
