//! The Spy-style validator: certifies from an event log alone that the
//! execution honored every data dependence of the (sequential-semantics)
//! source program.
//!
//! The check mirrors §2.1 of the paper: any two task accesses to
//! overlapping data with incompatible privileges must be ordered, and
//! the later task (in *launch* order — the program's sequential
//! semantics) must observe the earlier task's effect. On a single
//! shared instance that means plain happens-before. Across the
//! distributed executor's per-shard instances it means a *delivery*:
//! some `CopyApply` into the consumer's instance, before the consumer
//! runs, that happens-after the producer (the consumer-applied copy
//! protocol of §3.4). Reductions into identity-initialized temporaries
//! (§4.3) need no prior data, so a mutation followed by a `Reduce`
//! access on a fresh instance is certified without a delivery.
//!
//! Whether two logical regions may share elements is delegated to an
//! [`OverlapOracle`], keeping this crate independent of the region
//! forest implementation.

use crate::event::{CorruptSite, EventKind, PrivCode};
use crate::graph::{build_graph, EventGraph};
use crate::tracer::Trace;
use std::collections::{BTreeMap, HashMap};

/// Answers "may these two logical regions share elements?". Must be
/// conservative: returning `true` for disjoint regions only costs
/// precision (possible false violations), never soundness of a pass.
pub trait OverlapOracle {
    /// May regions `a` and `b` (by id) alias?
    fn overlaps(&self, a: u32, b: u32) -> bool;
}

/// Treats every region pair as overlapping. Only suitable for tests
/// and traces whose accesses all target one region tree with no
/// disjoint partitions.
pub struct AllOverlap;

impl OverlapOracle for AllOverlap {
    fn overlaps(&self, _a: u32, _b: u32) -> bool {
        true
    }
}

/// One certified-failed dependence.
#[derive(Debug)]
pub struct Violation {
    /// What failed: `"unordered"`, `"missing-delivery"`,
    /// `"stale-delivery"`, or `"unrepaired-corruption"`.
    pub kind: &'static str,
    /// Earlier task `(launch, pos)` in program order.
    pub first: (u32, u32),
    /// Later task `(launch, pos)`.
    pub second: (u32, u32),
    /// The regions the conflicting accesses touched.
    pub regions: (u32, u32),
    /// Human-readable description.
    pub detail: String,
}

/// Outcome of a validation run.
#[derive(Debug, Default)]
pub struct SpyReport {
    /// Distinct tasks `(launch, pos)` with recorded accesses.
    pub tasks: usize,
    /// Conflicting access pairs that required certification.
    pub pairs_checked: usize,
    /// Pairs successfully certified.
    pub certified: usize,
    /// Pairs that could not be certified.
    pub violations: Vec<Violation>,
}

impl SpyReport {
    /// True when every dependence was certified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "spy: {} tasks, {} conflicting pairs, {} certified, {} violations",
            self.tasks,
            self.pairs_checked,
            self.certified,
            self.violations.len()
        )
    }
}

#[derive(Clone, Copy)]
struct Access {
    region: u32,
    inst: u64,
    fields: u64,
    privilege: PrivCode,
}

#[derive(Clone, Copy)]
struct ApplyRec {
    node: u32,
    idx: usize,
    region: u32,
    inst: u64,
    fields: u64,
}

/// Validates `trace` against the sequential semantics of its program.
///
/// `Err` means the log itself is not a well-formed execution record
/// (happens-before cycle, a `CopyApply` with no matching `CopyIssue`,
/// or an access by a task whose run was never recorded) — distinct
/// from an `Ok` report carrying violations, which means the log is
/// well-formed but records a racy execution.
pub fn validate(trace: &Trace, oracle: &dyn OverlapOracle) -> Result<SpyReport, String> {
    let dropped: u64 = trace.tracks.iter().map(|t| t.dropped).sum();
    if dropped > 0 {
        return Err(format!(
            "incomplete log: {dropped} event(s) lost to ring wrap-around; a truncated \
             record cannot be certified"
        ));
    }
    let g = build_graph(trace)?;
    if !g.unmatched_applies.is_empty() {
        return Err(format!(
            "corrupted log: {} CopyApply event(s) have no matching CopyIssue",
            g.unmatched_applies.len()
        ));
    }

    // Accesses grouped by task; BTreeMap iteration gives launch order.
    let mut tasks: BTreeMap<(u32, u32), Vec<Access>> = BTreeMap::new();
    for track in &trace.tracks {
        for e in &track.events {
            if let EventKind::TaskAccess {
                launch,
                pos,
                region,
                inst,
                fields,
                privilege,
            } = e.kind
            {
                tasks.entry((launch, pos)).or_default().push(Access {
                    region,
                    inst,
                    fields,
                    privilege,
                });
            }
        }
    }

    // Run node per task (required for ordering queries).
    let mut run_of: HashMap<(u32, u32), u32> = HashMap::new();
    for &key in tasks.keys() {
        match g.run_of(key.0, key.1) {
            Some(r) => {
                run_of.insert(key, r);
            }
            None => {
                return Err(format!(
                    "corrupted log: task L{}[{}] has accesses but no recorded run",
                    key.0, key.1
                ));
            }
        }
    }

    // Applies per destination track, in track order.
    let mut applies: HashMap<usize, Vec<ApplyRec>> = HashMap::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if let EventKind::CopyApply {
            region,
            inst,
            fields,
            ..
        } = node.event.kind
        {
            applies.entry(node.track).or_default().push(ApplyRec {
                node: i as u32,
                idx: node.idx,
                region,
                inst,
                fields,
            });
        }
    }
    let no_applies: Vec<ApplyRec> = Vec::new();

    let keys: Vec<(u32, u32)> = tasks.keys().copied().collect();
    let mut report = SpyReport {
        tasks: keys.len(),
        ..SpyReport::default()
    };

    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            let (t1, t2) = (keys[i], keys[j]);
            // Point tasks of one index launch are non-interfering by
            // construction (the launcher checked); skip them.
            if t1.0 == t2.0 {
                continue;
            }
            let r1 = run_of[&t1];
            let r2 = run_of[&t2];
            for a1 in &tasks[&t1] {
                for a2 in &tasks[&t2] {
                    if a1.privilege.compatible(a2.privilege) {
                        continue;
                    }
                    if a1.fields & a2.fields == 0 {
                        continue;
                    }
                    if !oracle.overlaps(a1.region, a2.region) {
                        continue;
                    }
                    report.pairs_checked += 1;
                    check_pair(
                        &g,
                        &applies,
                        &no_applies,
                        oracle,
                        (t1, r1, a1),
                        (t2, r2, a2),
                        &mut report,
                    );
                }
            }
        }
    }

    // Integrity coherence: a run that finished with a detected
    // corruption left unhandled cannot be certified. Exchange and
    // collective detections must be followed on the same track by a
    // matching repair; resident detections by an escalation or a
    // checkpoint rollback.
    for track in &trace.tracks {
        let mut outstanding: Vec<(CorruptSite, u32, u32, u64)> = Vec::new();
        for e in &track.events {
            match e.kind {
                EventKind::CorruptDetected {
                    site,
                    id,
                    sub,
                    epoch,
                } => outstanding.push((site, id, sub, epoch)),
                EventKind::CorruptRepaired { site, id, sub, .. } => {
                    outstanding.retain(|&(s, i, u, _)| (s, i, u) != (site, id, sub));
                }
                EventKind::CorruptEscalated { .. } | EventKind::CheckpointRestore { .. } => {
                    outstanding.retain(|&(s, ..)| s != CorruptSite::Resident);
                }
                _ => {}
            }
        }
        for (site, id, sub, epoch) in outstanding {
            report.violations.push(Violation {
                kind: "unrepaired-corruption",
                first: (id, sub),
                second: (id, sub),
                regions: (0, 0),
                detail: format!(
                    "track {:?}: corruption detected at {site:?} site {id}.{sub} \
                     during epoch {epoch} was neither repaired nor escalated",
                    track.name
                ),
            });
        }
    }
    Ok(report)
}

/// Certifies one conflicting pair, `t1` earlier in launch order.
#[allow(clippy::too_many_arguments)]
fn check_pair(
    g: &EventGraph,
    applies: &HashMap<usize, Vec<ApplyRec>>,
    no_applies: &[ApplyRec],
    oracle: &dyn OverlapOracle,
    (t1, r1, a1): ((u32, u32), u32, &Access),
    (t2, r2, a2): ((u32, u32), u32, &Access),
    report: &mut SpyReport,
) {
    let violate = |report: &mut SpyReport, kind, detail: String| {
        report.violations.push(Violation {
            kind,
            first: t1,
            second: t2,
            regions: (a1.region, a2.region),
            detail,
        });
    };

    if a1.inst == a2.inst {
        // Shared instance: plain happens-before, in program direction.
        if g.reaches(r1, r2) {
            report.certified += 1;
        } else {
            violate(
                report,
                "unordered",
                format!(
                    "tasks L{}[{}] and L{}[{}] access instance {:#x} with \
                     conflicting privileges but no happens-before ordering",
                    t1.0, t1.1, t2.0, t2.1, a1.inst
                ),
            );
        }
        return;
    }

    // Distinct instances: the later task sees the earlier one's effect
    // only through the copy protocol.
    let track2 = g.nodes[r2 as usize].track;
    let idx2 = g.nodes[r2 as usize].idx;
    let apps2 = applies
        .get(&track2)
        .map(|v| v.as_slice())
        .unwrap_or(no_applies);

    if a1.privilege.mutates() {
        if matches!(a2.privilege, PrivCode::Reduce(_)) {
            // Reduction into an identity-initialized instance (§4.3)
            // reads no prior data; nothing to deliver.
            report.certified += 1;
            return;
        }
        // RAW (and read-write WAW): t2 reads its instance, so t1's
        // version must have been applied to it first.
        let delivered = apps2.iter().any(|a| {
            a.idx < idx2
                && a.inst == a2.inst
                && a.fields & a2.fields != 0
                && oracle.overlaps(a.region, a2.region)
                && g.reaches(r1, a.node)
        });
        if delivered {
            report.certified += 1;
        } else {
            violate(
                report,
                "missing-delivery",
                format!(
                    "L{}[{}] mutated region {} but no copy carrying its data \
                     was applied to instance {:#x} before L{}[{}] ran",
                    t1.0, t1.1, a1.region, a2.inst, t2.0, t2.1
                ),
            );
        }
        return;
    }

    // WAR: t1 read its instance, t2 mutates a different one. The only
    // failure mode is t1's instance being refreshed with t2's (future)
    // data before t1 read it.
    let track1 = g.nodes[r1 as usize].track;
    let idx1 = g.nodes[r1 as usize].idx;
    let apps1 = applies
        .get(&track1)
        .map(|v| v.as_slice())
        .unwrap_or(no_applies);
    let stale = apps1.iter().any(|a| {
        a.idx < idx1
            && a.inst == a1.inst
            && a.fields & a1.fields != 0
            && oracle.overlaps(a.region, a1.region)
            && g.reaches(r2, a.node)
    });
    if stale {
        violate(
            report,
            "stale-delivery",
            format!(
                "L{}[{}] read instance {:#x} after a copy reachable from the \
                 later writer L{}[{}] was applied to it",
                t1.0, t1.1, a1.inst, t2.0, t2.1
            ),
        );
    } else {
        report.certified += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::tracer::Track;

    fn ev(ts: u64, dur: u64, kind: EventKind) -> Event {
        Event { ts, dur, kind }
    }

    fn run(l: u32, p: u32) -> EventKind {
        EventKind::TaskRun {
            launch: l,
            pos: p,
            task: 0,
        }
    }

    fn access(
        l: u32,
        p: u32,
        region: u32,
        inst: u64,
        fields: u64,
        privilege: PrivCode,
    ) -> EventKind {
        EventKind::TaskAccess {
            launch: l,
            pos: p,
            region,
            inst,
            fields,
            privilege,
        }
    }

    fn trace_of(tracks: Vec<(&str, Vec<Event>)>) -> Trace {
        Trace {
            tracks: tracks
                .into_iter()
                .map(|(name, events)| Track {
                    name: name.into(),
                    events,
                    dropped: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn unrepaired_corruption_is_a_violation() {
        let det = |site, id, sub| EventKind::CorruptDetected {
            site,
            id,
            sub,
            epoch: 1,
        };
        // Repaired exchange + escalated resident: certifiable.
        let good = trace_of(vec![(
            "shard-0",
            vec![
                ev(0, 0, det(CorruptSite::Exchange, 2, 1)),
                ev(
                    1,
                    0,
                    EventKind::CorruptRepaired {
                        site: CorruptSite::Exchange,
                        id: 2,
                        sub: 1,
                        attempts: 1,
                    },
                ),
                ev(2, 0, det(CorruptSite::Resident, 0, 0)),
                ev(3, 0, EventKind::CorruptEscalated { shard: 0, epoch: 1 }),
            ],
        )]);
        assert!(validate(&good, &AllOverlap).unwrap().ok());

        // Detection with no repair: violation.
        let bad = trace_of(vec![(
            "shard-0",
            vec![ev(0, 0, det(CorruptSite::Exchange, 2, 1))],
        )]);
        let r = validate(&bad, &AllOverlap).unwrap();
        assert!(!r.ok());
        assert_eq!(r.violations[0].kind, "unrepaired-corruption");

        // A repair of a *different* payload does not clear it; nor does
        // an escalation (escalation only resolves resident sites).
        let wrong = trace_of(vec![(
            "shard-0",
            vec![
                ev(0, 0, det(CorruptSite::Exchange, 2, 1)),
                ev(
                    1,
                    0,
                    EventKind::CorruptRepaired {
                        site: CorruptSite::Exchange,
                        id: 2,
                        sub: 2,
                        attempts: 1,
                    },
                ),
                ev(2, 0, EventKind::CorruptEscalated { shard: 0, epoch: 1 }),
            ],
        )]);
        assert!(!validate(&wrong, &AllOverlap).unwrap().ok());
    }

    #[test]
    fn ordered_shared_instance_is_certified() {
        let trace = trace_of(vec![(
            "w0",
            vec![
                ev(0, 1, run(0, 0)),
                ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write)),
                ev(5, 1, run(1, 0)),
                ev(5, 0, access(1, 0, 1, 10, 1, PrivCode::Read)),
            ],
        )]);
        let r = validate(&trace, &AllOverlap).unwrap();
        assert_eq!(r.pairs_checked, 1);
        assert_eq!(r.certified, 1);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn unordered_shared_instance_is_a_violation() {
        let trace = trace_of(vec![
            (
                "w0",
                vec![
                    ev(0, 1, run(0, 0)),
                    ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write)),
                ],
            ),
            (
                "w1",
                vec![
                    ev(0, 1, run(1, 0)),
                    ev(0, 0, access(1, 0, 1, 10, 1, PrivCode::Read)),
                ],
            ),
        ]);
        let r = validate(&trace, &AllOverlap).unwrap();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, "unordered");
    }

    #[test]
    fn raw_across_instances_needs_a_delivery() {
        let issue = EventKind::CopyIssue {
            copy: 0,
            pair: 0,
            seq: 0,
            elements: 8,
            dst_shard: 1,
        };
        let apply = EventKind::CopyApply {
            copy: 0,
            pair: 0,
            seq: 0,
            region: 1,
            inst: 20,
            fields: 1,
            reduce: false,
        };
        let with_delivery = trace_of(vec![
            (
                "shard-0",
                vec![
                    ev(0, 1, run(0, 0)),
                    ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write)),
                    ev(2, 1, issue),
                ],
            ),
            (
                "shard-1",
                vec![
                    ev(4, 1, apply),
                    ev(6, 1, run(1, 0)),
                    ev(6, 0, access(1, 0, 1, 20, 1, PrivCode::Read)),
                ],
            ),
        ]);
        let r = validate(&with_delivery, &AllOverlap).unwrap();
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.certified, 1);

        // Same trace with the apply (and its issue) stripped: the
        // reader never received the writer's data.
        let without = trace_of(vec![
            (
                "shard-0",
                vec![
                    ev(0, 1, run(0, 0)),
                    ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write)),
                ],
            ),
            (
                "shard-1",
                vec![
                    ev(6, 1, run(1, 0)),
                    ev(6, 0, access(1, 0, 1, 20, 1, PrivCode::Read)),
                ],
            ),
        ]);
        let r = validate(&without, &AllOverlap).unwrap();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, "missing-delivery");
    }

    #[test]
    fn reduction_into_fresh_instance_needs_no_delivery() {
        let trace = trace_of(vec![
            (
                "shard-0",
                vec![
                    ev(0, 1, run(0, 0)),
                    ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write)),
                ],
            ),
            (
                "shard-1",
                vec![
                    ev(2, 1, run(1, 0)),
                    ev(2, 0, access(1, 0, 1, 30, 1, PrivCode::Reduce(0))),
                ],
            ),
        ]);
        let r = validate(&trace, &AllOverlap).unwrap();
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn disjoint_fields_and_regions_are_skipped() {
        struct Disjoint;
        impl OverlapOracle for Disjoint {
            fn overlaps(&self, _a: u32, _b: u32) -> bool {
                false
            }
        }
        let base = |oracle: &dyn OverlapOracle, f1: u64, f2: u64| {
            let trace = trace_of(vec![
                (
                    "w0",
                    vec![
                        ev(0, 1, run(0, 0)),
                        ev(0, 0, access(0, 0, 1, 10, f1, PrivCode::Write)),
                    ],
                ),
                (
                    "w1",
                    vec![
                        ev(0, 1, run(1, 0)),
                        ev(0, 0, access(1, 0, 2, 11, f2, PrivCode::Write)),
                    ],
                ),
            ]);
            validate(&trace, oracle).unwrap()
        };
        // Disjoint field masks: never a pair.
        let r = base(&AllOverlap, 0b01, 0b10);
        assert_eq!(r.pairs_checked, 0);
        // Overlapping fields but provably disjoint regions: skipped.
        let r = base(&Disjoint, 0b1, 0b1);
        assert_eq!(r.pairs_checked, 0);
    }

    #[test]
    fn corrupted_log_is_a_structural_error() {
        // Apply without issue.
        let trace = trace_of(vec![(
            "shard-1",
            vec![ev(
                0,
                1,
                EventKind::CopyApply {
                    copy: 0,
                    pair: 0,
                    seq: 0,
                    region: 1,
                    inst: 20,
                    fields: 1,
                    reduce: false,
                },
            )],
        )]);
        assert!(validate(&trace, &AllOverlap).is_err());
        // Access without a run.
        let trace = trace_of(vec![(
            "w0",
            vec![ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write))],
        )]);
        assert!(validate(&trace, &AllOverlap).is_err());
    }

    #[test]
    fn dropped_events_block_certification() {
        // A perfectly clean log that lost even one event is incomplete:
        // it must be rejected up front, not silently certified.
        let mut trace = trace_of(vec![(
            "w0",
            vec![
                ev(0, 1, run(0, 0)),
                ev(0, 0, access(0, 0, 1, 10, 1, PrivCode::Write)),
            ],
        )]);
        assert!(validate(&trace, &AllOverlap).is_ok());
        trace.tracks[0].dropped = 1;
        let err = validate(&trace, &AllOverlap).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
    }
}
