//! Prof-style analysis: per-track utilization, per-timestep control
//! cost, and the duration-weighted critical path.
//!
//! The per-step control cost is the paper's headline measurement: a
//! single control thread's dependence analysis grows with node count
//! (O(N) per timestep), while a control-replicated shard launches only
//! its own tasks (O(1) per timestep). Two extractors surface that from
//! traces:
//!
//! * [`control_cost_per_step`] — for *executor* traces: sums
//!   [`crate::EventKind::DepAnalysis`] span time between consecutive
//!   [`crate::EventKind::StepBegin`] markers on one track;
//! * [`sim_control_cost_per_step`] — for *simulator* traces: sums
//!   [`crate::EventKind::SimTask`] service time with kind `Launch` or
//!   `Analysis` per `(node, step)`, then takes the per-step maximum
//!   over nodes (nodes run concurrently, so the slowest one bounds the
//!   step).

use crate::event::{EventKind, SimKind};
use crate::graph::build_graph;
use crate::tracer::Trace;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Node-count ceiling above which [`ProfReport::analyze`] skips the
/// critical path (its reachability precompute is quadratic).
const CRITICAL_PATH_NODE_LIMIT: usize = 16_384;

/// Utilization summary of one track.
#[derive(Clone, Debug)]
pub struct TrackSummary {
    /// Track name.
    pub name: String,
    /// Events recorded.
    pub events: usize,
    /// Events lost to ring wrap-around.
    pub dropped: u64,
    /// Total span time (ns) on this track.
    pub busy_ns: u64,
    /// Wall extent (ns): last end minus first start.
    pub span_ns: u64,
    /// `busy_ns / span_ns` (0 for empty or instant-only tracks).
    pub utilization: f64,
}

/// Whole-trace profile.
#[derive(Clone, Debug)]
pub struct ProfReport {
    /// Per-track summaries, in trace order.
    pub tracks: Vec<TrackSummary>,
    /// Duration-weighted critical path length (ns), when the trace is
    /// small enough to reconstruct the happens-before graph and the
    /// graph is acyclic.
    pub critical_path_ns: Option<u64>,
    /// Events lost to ring wrap-around, summed over every track. A
    /// nonzero value means the profile (and any certification) is based
    /// on an *incomplete* record.
    pub dropped: u64,
}

impl ProfReport {
    /// Profiles a collected trace.
    pub fn analyze(trace: &Trace) -> ProfReport {
        let tracks = trace
            .tracks
            .iter()
            .map(|t| {
                let busy_ns: u64 = t.events.iter().map(|e| e.dur).sum();
                let span_ns = match (
                    t.events.iter().map(|e| e.ts).min(),
                    t.events.iter().map(|e| e.ts + e.dur).max(),
                ) {
                    (Some(lo), Some(hi)) => hi - lo,
                    _ => 0,
                };
                TrackSummary {
                    name: t.name.clone(),
                    events: t.events.len(),
                    dropped: t.dropped,
                    busy_ns,
                    span_ns,
                    utilization: if span_ns > 0 {
                        busy_ns as f64 / span_ns as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let sync_nodes = trace
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| {
                !matches!(
                    e.kind,
                    EventKind::Counter { .. } | EventKind::SimTask { .. }
                )
            })
            .count();
        let critical_path_ns = if sync_nodes <= CRITICAL_PATH_NODE_LIMIT {
            build_graph(trace).ok().map(|g| g.critical_path().0)
        } else {
            None
        };
        ProfReport {
            tracks,
            critical_path_ns,
            dropped: trace.tracks.iter().map(|t| t.dropped).sum(),
        }
    }

    /// Renders the profile as an aligned text table.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .tracks
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let _ = writeln!(
            out,
            "{:width$}  {:>8}  {:>8}  {:>12}  {:>12}  {:>6}",
            "track", "events", "dropped", "busy (us)", "span (us)", "util"
        );
        for t in &self.tracks {
            // Tracks whose spans overlap (e.g. a simulator track holding
            // every node's concurrent service intervals) can sum to more
            // busy time than wall extent; the displayed utilization is
            // clamped so the column stays a percentage.
            let _ = writeln!(
                out,
                "{:width$}  {:>8}  {:>8}  {:>12.1}  {:>12.1}  {:>5.1}%",
                t.name,
                t.events,
                t.dropped,
                t.busy_ns as f64 / 1e3,
                t.span_ns as f64 / 1e3,
                t.utilization.min(1.0) * 100.0
            );
        }
        if let Some(cp) = self.critical_path_ns {
            let _ = writeln!(out, "critical path: {:.1} us", cp as f64 / 1e3);
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: {} event(s) dropped to ring wrap-around — trace is incomplete",
                self.dropped
            );
        }
        out
    }
}

/// Per-timestep dependence-analysis cost (ns) of one executor track,
/// grouped by its [`crate::EventKind::StepBegin`] markers. Span time
/// before the first marker is attributed to step 0's predecessor and
/// dropped. Returns `(step, cost_ns)` pairs in step order.
pub fn control_cost_per_step(trace: &Trace, track: &str) -> Vec<(u64, u64)> {
    let Some(t) = trace.track(track) else {
        return Vec::new();
    };
    let mut out: Vec<(u64, u64)> = Vec::new();
    let mut current: Option<u64> = None;
    for e in &t.events {
        match e.kind {
            EventKind::StepBegin { step } => {
                current = Some(step);
                if out.last().map(|(s, _)| *s) != Some(step) {
                    out.push((step, 0));
                }
            }
            EventKind::DepAnalysis { .. } if current.is_some() => {
                if let Some(last) = out.last_mut() {
                    last.1 += e.dur;
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-timestep control cost (virtual ns) of one *simulator* track:
/// `Launch` + `Analysis` service time summed per `(node, step)`, then
/// the maximum over nodes for each step. Returns `(step, cost_ns)` in
/// step order.
pub fn sim_control_cost_per_step(trace: &Trace, track: &str) -> Vec<(u64, u64)> {
    let Some(t) = trace.track(track) else {
        return Vec::new();
    };
    let mut per: HashMap<(u32, u32), u64> = HashMap::new();
    for e in &t.events {
        if let EventKind::SimTask { kind, node, step } = e.kind {
            if matches!(kind, SimKind::Launch | SimKind::Analysis) {
                *per.entry((node, step)).or_insert(0) += e.dur;
            }
        }
    }
    let mut by_step: HashMap<u32, u64> = HashMap::new();
    for ((_node, step), cost) in per {
        let slot = by_step.entry(step).or_insert(0);
        *slot = (*slot).max(cost);
    }
    let mut out: Vec<(u64, u64)> = by_step.into_iter().map(|(s, c)| (s as u64, c)).collect();
    out.sort_unstable();
    out
}

/// Epoch-trace memoization summary of one executor track: how many
/// epochs captured/replayed/diverged, and how the per-epoch dependence
/// analysis cost amortized (the runtime-level answer to the paper's
/// O(N)-per-step control overhead).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemoSummary {
    /// Epochs whose analysis was captured as a template.
    pub captures: u64,
    /// Epochs fully replayed from a template (no analysis ran).
    pub hits: u64,
    /// Replay attempts that diverged and fell back to analysis.
    pub misses: u64,
    /// Cache invalidations (region-forest version changes).
    pub invalidations: u64,
    /// Point tasks replayed without analysis.
    pub replayed_tasks: u64,
    /// Dependence-analysis span time (ns) attributed to the first
    /// observed epoch (capture cost).
    pub first_epoch_analysis_ns: u64,
    /// Mean dependence-analysis span time (ns) per epoch over every
    /// epoch after the first (0 when there is at most one epoch).
    pub steady_state_analysis_ns: f64,
}

impl MemoSummary {
    /// Hit rate over the steady-state epochs: replays divided by every
    /// epoch after the first capture opportunity. 1.0 when every
    /// post-capture epoch replayed; 0 when no epochs were observed.
    pub fn steady_state_hit_rate(&self) -> f64 {
        let steady = self.captures + self.hits + self.misses;
        if steady <= 1 {
            return 0.0;
        }
        self.hits as f64 / (steady - 1) as f64
    }
}

/// Summarizes epoch-trace memoization on one executor track: counts the
/// memo events and splits the per-step analysis cost (from
/// [`control_cost_per_step`]) into the first epoch vs the steady state.
pub fn memo_summary(trace: &Trace, track: &str) -> MemoSummary {
    let mut s = MemoSummary::default();
    if let Some(t) = trace.track(track) {
        for e in &t.events {
            match e.kind {
                EventKind::MemoCapture { tasks, .. } => {
                    s.captures += 1;
                    let _ = tasks;
                }
                EventKind::MemoHit { tasks, .. } => {
                    s.hits += 1;
                    s.replayed_tasks += tasks as u64;
                }
                EventKind::MemoMiss { .. } => s.misses += 1,
                EventKind::MemoInvalidate { .. } => s.invalidations += 1,
                _ => {}
            }
        }
    }
    let per_step = control_cost_per_step(trace, track);
    if let Some(&(_, first)) = per_step.first() {
        s.first_epoch_analysis_ns = first;
        let rest = &per_step[1..];
        if !rest.is_empty() {
            s.steady_state_analysis_ns =
                rest.iter().map(|(_, c)| *c as f64).sum::<f64>() / rest.len() as f64;
        }
    }
    s
}

/// Integrity summary of a whole trace: what the silent-data-corruption
/// layer injected, caught, and did about it, aggregated across every
/// shard track. `detection_latency_epochs` reports how far detection
/// lagged injection — always 0 in this runtime (corruption is caught at
/// the first verification boundary after it occurs), but recorded so a
/// regression shows up as a number, not a silent correctness hole.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IntegritySummary {
    /// Corruptions detected at a checksum verification point.
    pub detected: u64,
    /// Detections at exchange (point-to-point payload) sites.
    pub exchange_detected: u64,
    /// Detections at resident-instance sites.
    pub resident_detected: u64,
    /// Detections at collective-contribution sites.
    pub collective_detected: u64,
    /// Corruptions repaired locally by retransmission.
    pub repaired: u64,
    /// Corrupted delivery attempts absorbed by local repair.
    pub repair_attempts: u64,
    /// Corruptions escalated to coordinated rollback.
    pub escalated: u64,
    /// Checkpoint restores observed (every escalation triggers one per
    /// shard).
    pub restores: u64,
    /// Maximum epochs between a corruption occurring and its detection.
    pub detection_latency_epochs: u64,
}

impl IntegritySummary {
    /// Every detection must be resolved: repaired in place or escalated
    /// to rollback. Repair absorbs one detection per corrupted attempt.
    pub fn coherent(&self) -> bool {
        self.detected == self.repair_attempts + self.escalated
            && self.repaired <= self.repair_attempts
    }
}

/// Summarizes the integrity events of every track in `trace`.
pub fn integrity_summary(trace: &Trace) -> IntegritySummary {
    use crate::event::CorruptSite;
    let mut s = IntegritySummary::default();
    for t in &trace.tracks {
        for e in &t.events {
            match e.kind {
                EventKind::CorruptDetected { site, .. } => {
                    s.detected += 1;
                    match site {
                        CorruptSite::Exchange => s.exchange_detected += 1,
                        CorruptSite::Resident => s.resident_detected += 1,
                        CorruptSite::Collective => s.collective_detected += 1,
                    }
                }
                EventKind::CorruptRepaired { attempts, .. } => {
                    s.repaired += 1;
                    s.repair_attempts += attempts as u64;
                }
                EventKind::CorruptEscalated { .. } => s.escalated += 1,
                EventKind::CheckpointRestore { epoch, to_epoch } => {
                    s.restores += 1;
                    let _ = (epoch, to_epoch);
                }
                _ => {}
            }
        }
    }
    s
}

/// Failover summary of a whole trace: what the elastic-membership layer
/// observed and did, aggregated across every track (the failover driver
/// records onto a dedicated `failover` track). The cause split uses the
/// trace convention: 0 = killed, 1 = panicked, 2 = hung.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FailoverSummary {
    /// Shard deaths observed (root causes only — one per loss).
    pub deaths: u64,
    /// Deaths by injected kill (cause 0).
    pub killed: u64,
    /// Deaths by shard panic (cause 1).
    pub panicked: u64,
    /// Deaths by hang past the timeout (cause 2).
    pub hung: u64,
    /// Membership epochs established (one per survived loss).
    pub membership_changes: u64,
    /// Checkpoint reconstructions onto a shrunken membership.
    pub reconstructions: u64,
    /// Subregion instances rebuilt across all reconstructions.
    pub insts_rebuilt: u64,
    /// Span time (ns) spent reconstructing checkpoints.
    pub reconstruct_ns: u64,
    /// Final membership after the last change (0 when none occurred).
    pub final_shards: u32,
}

impl FailoverSummary {
    /// Every death must be resolved by a membership change — a death
    /// with no change means the run fail-stopped (budget exhausted) or
    /// the record is truncated.
    pub fn coherent(&self) -> bool {
        self.deaths == self.membership_changes
    }
}

/// Summarizes the elastic-membership events of every track in `trace`.
pub fn failover_summary(trace: &Trace) -> FailoverSummary {
    let mut s = FailoverSummary::default();
    for t in &trace.tracks {
        for e in &t.events {
            match e.kind {
                EventKind::PeerDeath { cause, .. } => {
                    s.deaths += 1;
                    match cause {
                        0 => s.killed += 1,
                        1 => s.panicked += 1,
                        _ => s.hung += 1,
                    }
                }
                EventKind::MembershipChange { to_shards, .. } => {
                    s.membership_changes += 1;
                    s.final_shards = to_shards;
                }
                EventKind::FailoverReconstruct { insts, .. } => {
                    s.reconstructions += 1;
                    s.insts_rebuilt += insts as u64;
                    s.reconstruct_ns += e.dur;
                }
                _ => {}
            }
        }
    }
    s
}

/// Mean of the cost column of a per-step series (0 when empty).
pub fn mean_step_cost(series: &[(u64, u64)]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|(_, c)| *c as f64).sum::<f64>() / series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::tracer::Track;

    fn track(name: &str, events: Vec<Event>) -> Track {
        Track {
            name: name.into(),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn utilization_and_table() {
        let trace = Trace {
            tracks: vec![track(
                "w0",
                vec![
                    Event {
                        ts: 0,
                        dur: 50,
                        kind: EventKind::Mark { name: "a" },
                    },
                    Event {
                        ts: 100,
                        dur: 50,
                        kind: EventKind::Mark { name: "b" },
                    },
                ],
            )],
        };
        let p = ProfReport::analyze(&trace);
        assert_eq!(p.tracks[0].busy_ns, 100);
        assert_eq!(p.tracks[0].span_ns, 150);
        assert!((p.tracks[0].utilization - 100.0 / 150.0).abs() < 1e-9);
        assert!(p.format_table().contains("w0"));
    }

    #[test]
    fn overlapping_spans_render_at_most_100_percent() {
        // Two fully overlapping 100 ns spans: busy 200 ns over a 100 ns
        // extent. The raw ratio stays available; the rendered column is
        // clamped to 100%.
        let trace = Trace {
            tracks: vec![track(
                "sim",
                vec![
                    Event {
                        ts: 0,
                        dur: 100,
                        kind: EventKind::Mark { name: "a" },
                    },
                    Event {
                        ts: 0,
                        dur: 100,
                        kind: EventKind::Mark { name: "b" },
                    },
                ],
            )],
        };
        let p = ProfReport::analyze(&trace);
        assert!((p.tracks[0].utilization - 2.0).abs() < 1e-9);
        let table = p.format_table();
        assert!(table.contains("100.0%"), "{table}");
        assert!(!table.contains("200.0%"), "{table}");
    }

    #[test]
    fn dropped_events_flag_the_profile_incomplete() {
        let mut t = track("w0", Vec::new());
        t.dropped = 17;
        let p = ProfReport::analyze(&Trace { tracks: vec![t] });
        assert_eq!(p.dropped, 17);
        assert!(p.format_table().contains("incomplete"));
    }

    #[test]
    fn executor_step_costs_group_by_step_begin() {
        let dep = |d: u64| Event {
            ts: 0,
            dur: d,
            kind: EventKind::DepAnalysis {
                launch: 0,
                pos: 0,
                checks: 1,
            },
        };
        let step = |s: u64| Event {
            ts: 0,
            dur: 0,
            kind: EventKind::StepBegin { step: s },
        };
        let trace = Trace {
            tracks: vec![track(
                "control",
                vec![step(0), dep(10), dep(5), step(1), dep(7)],
            )],
        };
        assert_eq!(
            control_cost_per_step(&trace, "control"),
            vec![(0, 15), (1, 7)]
        );
        assert!(control_cost_per_step(&trace, "absent").is_empty());
    }

    #[test]
    fn integrity_summary_counts_and_coherence() {
        use crate::event::CorruptSite;
        let ev = |kind| Event {
            ts: 0,
            dur: 0,
            kind,
        };
        let trace = Trace {
            tracks: vec![
                track(
                    "shard-0",
                    vec![
                        // Two corrupted attempts on one exchange, then repair.
                        ev(EventKind::CorruptDetected {
                            site: CorruptSite::Exchange,
                            id: 3,
                            sub: 1,
                            epoch: 2,
                        }),
                        ev(EventKind::CorruptDetected {
                            site: CorruptSite::Exchange,
                            id: 3,
                            sub: 1,
                            epoch: 2,
                        }),
                        ev(EventKind::CorruptRepaired {
                            site: CorruptSite::Exchange,
                            id: 3,
                            sub: 1,
                            attempts: 2,
                        }),
                        ev(EventKind::CheckpointRestore {
                            epoch: 4,
                            to_epoch: 2,
                        }),
                    ],
                ),
                track(
                    "shard-1",
                    vec![
                        ev(EventKind::CorruptDetected {
                            site: CorruptSite::Resident,
                            id: 0,
                            sub: 0,
                            epoch: 4,
                        }),
                        ev(EventKind::CorruptEscalated { shard: 1, epoch: 4 }),
                        ev(EventKind::CheckpointRestore {
                            epoch: 4,
                            to_epoch: 2,
                        }),
                    ],
                ),
            ],
        };
        let s = integrity_summary(&trace);
        assert_eq!(s.detected, 3);
        assert_eq!(s.exchange_detected, 2);
        assert_eq!(s.resident_detected, 1);
        assert_eq!(s.repaired, 1);
        assert_eq!(s.repair_attempts, 2);
        assert_eq!(s.escalated, 1);
        assert_eq!(s.restores, 2);
        assert!(s.coherent(), "{s:?}");
        // A detection with no resolution breaks coherence.
        let bad = integrity_summary(&Trace {
            tracks: vec![track(
                "s",
                vec![ev(EventKind::CorruptDetected {
                    site: CorruptSite::Collective,
                    id: 1,
                    sub: 0,
                    epoch: 0,
                })],
            )],
        });
        assert!(!bad.coherent());
        assert_eq!(
            integrity_summary(&Trace { tracks: vec![] }),
            IntegritySummary::default()
        );
    }

    #[test]
    fn memo_summary_counts_and_amortization() {
        let dep = |d: u64| Event {
            ts: 0,
            dur: d,
            kind: EventKind::DepAnalysis {
                launch: 0,
                pos: 0,
                checks: 1,
            },
        };
        let step = |s: u64| Event {
            ts: 0,
            dur: 0,
            kind: EventKind::StepBegin { step: s },
        };
        let instant = |kind| Event {
            ts: 0,
            dur: 0,
            kind,
        };
        let trace = Trace {
            tracks: vec![track(
                "control",
                vec![
                    step(0),
                    dep(100),
                    dep(50),
                    instant(EventKind::MemoCapture {
                        epoch: 0,
                        key: 7,
                        tasks: 2,
                    }),
                    step(1),
                    instant(EventKind::MemoHit {
                        epoch: 1,
                        key: 7,
                        tasks: 2,
                    }),
                    step(2),
                    instant(EventKind::MemoHit {
                        epoch: 2,
                        key: 7,
                        tasks: 2,
                    }),
                ],
            )],
        };
        let s = memo_summary(&trace, "control");
        assert_eq!(s.captures, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(s.replayed_tasks, 4);
        assert_eq!(s.first_epoch_analysis_ns, 150);
        assert_eq!(s.steady_state_analysis_ns, 0.0);
        assert_eq!(s.steady_state_hit_rate(), 1.0);
        assert_eq!(memo_summary(&trace, "absent"), MemoSummary::default());
    }

    #[test]
    fn failover_summary_counts_causes_and_coherence() {
        let ev = |dur, kind| Event { ts: 0, dur, kind };
        let trace = Trace {
            tracks: vec![track(
                "failover",
                vec![
                    ev(
                        0,
                        EventKind::PeerDeath {
                            shard: 2,
                            cause: 0,
                            epoch: 3,
                        },
                    ),
                    ev(
                        120,
                        EventKind::FailoverReconstruct {
                            to_shards: 3,
                            insts: 9,
                            epoch: 2,
                        },
                    ),
                    ev(
                        0,
                        EventKind::MembershipChange {
                            from_shards: 4,
                            to_shards: 3,
                            dead_shard: 2,
                            epoch: 2,
                        },
                    ),
                    ev(
                        0,
                        EventKind::PeerDeath {
                            shard: 1,
                            cause: 2,
                            epoch: 0,
                        },
                    ),
                    ev(
                        80,
                        EventKind::FailoverReconstruct {
                            to_shards: 2,
                            insts: 6,
                            epoch: 2,
                        },
                    ),
                    ev(
                        0,
                        EventKind::MembershipChange {
                            from_shards: 3,
                            to_shards: 2,
                            dead_shard: 1,
                            epoch: 2,
                        },
                    ),
                ],
            )],
        };
        let s = failover_summary(&trace);
        assert_eq!(s.deaths, 2);
        assert_eq!(s.killed, 1);
        assert_eq!(s.panicked, 0);
        assert_eq!(s.hung, 1);
        assert_eq!(s.membership_changes, 2);
        assert_eq!(s.reconstructions, 2);
        assert_eq!(s.insts_rebuilt, 15);
        assert_eq!(s.reconstruct_ns, 200);
        assert_eq!(s.final_shards, 2);
        assert!(s.coherent(), "{s:?}");
        // A death without a membership change (budget exhausted) is
        // incoherent — the profiler flags it rather than hiding it.
        let bad = failover_summary(&Trace {
            tracks: vec![track(
                "failover",
                vec![ev(
                    0,
                    EventKind::PeerDeath {
                        shard: 0,
                        cause: 1,
                        epoch: 0,
                    },
                )],
            )],
        });
        assert!(!bad.coherent());
        assert_eq!(
            failover_summary(&Trace { tracks: vec![] }),
            FailoverSummary::default()
        );
    }

    #[test]
    fn sim_step_costs_take_max_over_nodes() {
        let sim = |kind: SimKind, node: u32, step: u32, dur: u64| Event {
            ts: 0,
            dur,
            kind: EventKind::SimTask { kind, node, step },
        };
        let trace = Trace {
            tracks: vec![track(
                "sim",
                vec![
                    sim(SimKind::Launch, 0, 0, 10),
                    sim(SimKind::Analysis, 0, 0, 5),
                    sim(SimKind::Launch, 1, 0, 12),
                    sim(SimKind::Compute, 1, 0, 1000), // not control cost
                    sim(SimKind::Launch, 0, 1, 9),
                ],
            )],
        };
        // Step 0: node 0 costs 15, node 1 costs 12 → max 15.
        assert_eq!(
            sim_control_cost_per_step(&trace, "sim"),
            vec![(0, 15), (1, 9)]
        );
        assert!((mean_step_cost(&[(0, 15), (1, 9)]) - 12.0).abs() < 1e-9);
    }
}
