//! Lossless trace (de)serialization: the native sidecar that makes a
//! written trace file loadable by offline tooling (`regent-prof`).
//!
//! The Chrome exporter renders events for *display* — names are
//! flattened to strings and most identity fields are dropped — so a
//! Chrome file alone cannot be re-analyzed.
//! [`export_chrome`](crate::export_chrome) therefore embeds the output
//! of
//! [`tracks_json`] under a sibling top-level `regentTracks` key: one
//! file is both Perfetto-loadable and a complete execution record.
//! [`import_trace`] accepts either that embedded form or the standalone
//! native document written by [`export_native`].
//!
//! `u64` fields that can exceed 2^53 (instance hashes, field masks,
//! memo keys) are encoded as decimal *strings* so they survive the
//! JSON number round-trip exactly.

use crate::event::{CorruptSite, Event, EventKind, PrivCode, SimKind};
use crate::json::{escape_into, parse, Value};
use crate::tracer::{Trace, Track};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// Interns `s`, returning a `&'static str` with the same contents.
/// Used when importing events whose schema carries static names
/// (`Pass`, `Counter`, `Mark`); repeated names share one allocation.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut pool = pool.lock().unwrap();
    if let Some(&v) = pool.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(s.to_string(), leaked);
    leaked
}

/// Serializes the tracks as a JSON array value (no surrounding
/// document): `[{"name":…,"dropped":…,"events":[…]},…]`.
pub fn tracks_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.num_events() * 64 + 256);
    out.push('[');
    for (ti, track) in trace.tracks.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &track.name);
        write!(out, "\",\"dropped\":{},\"events\":[", track.dropped).unwrap();
        for (ei, e) in track.events.iter().enumerate() {
            if ei > 0 {
                out.push(',');
            }
            write_event(&mut out, e);
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Serializes `trace` as a standalone native document:
/// `{"regentTrace":1,"tracks":[…]}`.
pub fn export_native(trace: &Trace) -> String {
    format!("{{\"regentTrace\":1,\"tracks\":{}}}", tracks_json(trace))
}

fn site_str(s: CorruptSite) -> &'static str {
    match s {
        CorruptSite::Exchange => "exchange",
        CorruptSite::Resident => "resident",
        CorruptSite::Collective => "collective",
    }
}

fn sim_str(k: SimKind) -> &'static str {
    match k {
        SimKind::Launch => "launch",
        SimKind::Analysis => "analysis",
        SimKind::Compute => "compute",
        SimKind::Copy => "copy",
        SimKind::Collective => "collective",
        SimKind::Log => "log",
        SimKind::Other => "other",
    }
}

fn priv_str(p: PrivCode) -> String {
    match p {
        PrivCode::Read => "read".into(),
        PrivCode::Write => "write".into(),
        PrivCode::Reduce(op) => format!("reduce:{op}"),
    }
}

fn write_event(out: &mut String, e: &Event) {
    write!(out, "{{\"ts\":{},\"dur\":{},\"k\":", e.ts, e.dur).unwrap();
    match e.kind {
        EventKind::TaskLaunch { launch, pos, task } => {
            write!(
                out,
                "\"task_launch\",\"launch\":{launch},\"pos\":{pos},\"task\":{task}"
            )
        }
        EventKind::TaskRun { launch, pos, task } => {
            write!(
                out,
                "\"task_run\",\"launch\":{launch},\"pos\":{pos},\"task\":{task}"
            )
        }
        EventKind::TaskAccess {
            launch,
            pos,
            region,
            inst,
            fields,
            privilege,
        } => write!(
            out,
            "\"task_access\",\"launch\":{launch},\"pos\":{pos},\"region\":{region},\
             \"inst\":\"{inst}\",\"fields\":\"{fields}\",\"priv\":\"{}\"",
            priv_str(privilege)
        ),
        EventKind::DepAnalysis {
            launch,
            pos,
            checks,
        } => {
            write!(
                out,
                "\"dep_analysis\",\"launch\":{launch},\"pos\":{pos},\"checks\":{checks}"
            )
        }
        EventKind::DepEdge {
            from_launch,
            from_pos,
            to_launch,
            to_pos,
        } => write!(
            out,
            "\"dep_edge\",\"from_launch\":{from_launch},\"from_pos\":{from_pos},\
             \"to_launch\":{to_launch},\"to_pos\":{to_pos}"
        ),
        EventKind::Drain => write!(out, "\"drain\""),
        EventKind::CopyIssue {
            copy,
            pair,
            seq,
            elements,
            dst_shard,
        } => write!(
            out,
            "\"copy_issue\",\"copy\":{copy},\"pair\":{pair},\"seq\":{seq},\
             \"elements\":{elements},\"dst_shard\":{dst_shard}"
        ),
        EventKind::CopyApply {
            copy,
            pair,
            seq,
            region,
            inst,
            fields,
            reduce,
        } => write!(
            out,
            "\"copy_apply\",\"copy\":{copy},\"pair\":{pair},\"seq\":{seq},\"region\":{region},\
             \"inst\":\"{inst}\",\"fields\":\"{fields}\",\"reduce\":{reduce}"
        ),
        EventKind::BarrierArrive { generation } => {
            write!(out, "\"barrier_arrive\",\"generation\":{generation}")
        }
        EventKind::BarrierLeave { generation } => {
            write!(out, "\"barrier_leave\",\"generation\":{generation}")
        }
        EventKind::CollectiveArrive { generation } => {
            write!(out, "\"collective_arrive\",\"generation\":{generation}")
        }
        EventKind::CollectiveLeave { generation } => {
            write!(out, "\"collective_leave\",\"generation\":{generation}")
        }
        EventKind::StepBegin { step } => write!(out, "\"step_begin\",\"step\":{step}"),
        EventKind::CheckpointSave { epoch } => {
            write!(out, "\"checkpoint_save\",\"epoch\":{epoch}")
        }
        EventKind::CheckpointRestore { epoch, to_epoch } => {
            write!(
                out,
                "\"checkpoint_restore\",\"epoch\":{epoch},\"to_epoch\":{to_epoch}"
            )
        }
        EventKind::ShardCrash { shard, epoch } => {
            write!(out, "\"shard_crash\",\"shard\":{shard},\"epoch\":{epoch}")
        }
        EventKind::PeerDeath {
            shard,
            cause,
            epoch,
        } => write!(
            out,
            "\"peer_death\",\"shard\":{shard},\"cause\":{cause},\"epoch\":{epoch}"
        ),
        EventKind::MembershipChange {
            from_shards,
            to_shards,
            dead_shard,
            epoch,
        } => write!(
            out,
            "\"membership_change\",\"from_shards\":{from_shards},\"to_shards\":{to_shards},\
             \"dead_shard\":{dead_shard},\"epoch\":{epoch}"
        ),
        EventKind::FailoverReconstruct {
            to_shards,
            insts,
            epoch,
        } => write!(
            out,
            "\"failover_reconstruct\",\"to_shards\":{to_shards},\"insts\":{insts},\
             \"epoch\":{epoch}"
        ),
        EventKind::CorruptDetected {
            site,
            id,
            sub,
            epoch,
        } => write!(
            out,
            "\"corrupt_detected\",\"site\":\"{}\",\"id\":{id},\"sub\":{sub},\"epoch\":{epoch}",
            site_str(site)
        ),
        EventKind::CorruptRepaired {
            site,
            id,
            sub,
            attempts,
        } => write!(
            out,
            "\"corrupt_repaired\",\"site\":\"{}\",\"id\":{id},\"sub\":{sub},\
             \"attempts\":{attempts}",
            site_str(site)
        ),
        EventKind::CorruptEscalated { shard, epoch } => {
            write!(
                out,
                "\"corrupt_escalated\",\"shard\":{shard},\"epoch\":{epoch}"
            )
        }
        EventKind::MemoCapture { epoch, key, tasks } => {
            write!(
                out,
                "\"memo_capture\",\"epoch\":{epoch},\"key\":\"{key}\",\"tasks\":{tasks}"
            )
        }
        EventKind::MemoHit { epoch, key, tasks } => {
            write!(
                out,
                "\"memo_hit\",\"epoch\":{epoch},\"key\":\"{key}\",\"tasks\":{tasks}"
            )
        }
        EventKind::MemoMiss { epoch, at } => {
            write!(out, "\"memo_miss\",\"epoch\":{epoch},\"at\":{at}")
        }
        EventKind::MemoInvalidate { templates } => {
            write!(out, "\"memo_invalidate\",\"templates\":{templates}")
        }
        EventKind::MemoReplay { launch, pos } => {
            write!(out, "\"memo_replay\",\"launch\":{launch},\"pos\":{pos}")
        }
        EventKind::LogAppend {
            epoch,
            batch,
            records,
        } => write!(
            out,
            "\"log_append\",\"epoch\":{epoch},\"batch\":{batch},\"records\":{records}"
        ),
        EventKind::LogCombine { batch, records } => {
            write!(
                out,
                "\"log_combine\",\"batch\":{batch},\"records\":{records}"
            )
        }
        EventKind::LogConsume {
            replica,
            batch,
            records,
            lag,
        } => write!(
            out,
            "\"log_consume\",\"replica\":{replica},\"batch\":{batch},\
             \"records\":{records},\"lag\":{lag}"
        ),
        EventKind::JobAdmit {
            job,
            tenant,
            queued,
        } => {
            write!(
                out,
                "\"job_admit\",\"job\":\"{job}\",\"tenant\":{tenant},\"queued\":{queued}"
            )
        }
        EventKind::JobShed {
            job,
            tenant,
            queued,
        } => {
            write!(
                out,
                "\"job_shed\",\"job\":\"{job}\",\"tenant\":{tenant},\"queued\":{queued}"
            )
        }
        EventKind::JobRetry {
            job,
            tenant,
            attempt,
        } => {
            write!(
                out,
                "\"job_retry\",\"job\":\"{job}\",\"tenant\":{tenant},\"attempt\":{attempt}"
            )
        }
        EventKind::JobDegrade {
            tenant,
            from_shards,
            to_shards,
        } => write!(
            out,
            "\"job_degrade\",\"tenant\":{tenant},\"from_shards\":{from_shards},\
             \"to_shards\":{to_shards}"
        ),
        EventKind::Pass { name } => {
            out.push_str("\"pass\",\"name\":\"");
            escape_into(out, name);
            out.push('"');
            Ok(())
        }
        EventKind::SimTask { kind, node, step } => write!(
            out,
            "\"sim_task\",\"kind\":\"{}\",\"node\":{node},\"step\":{step}",
            sim_str(kind)
        ),
        EventKind::Counter { name, value } => {
            out.push_str("\"counter\",\"name\":\"");
            escape_into(out, name);
            let v = if value.is_finite() { value } else { 0.0 };
            write!(out, "\",\"value\":{v}")
        }
        EventKind::Mark { name } => {
            out.push_str("\"mark\",\"name\":\"");
            escape_into(out, name);
            out.push('"');
            Ok(())
        }
    }
    .unwrap();
    out.push('}');
}

fn get_u64(o: &BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    match o.get(key) {
        Some(Value::Num(n)) => Ok(*n as u64),
        // Large u64s are serialized as decimal strings (see module docs).
        Some(Value::Str(s)) => s
            .parse::<u64>()
            .map_err(|_| format!("bad u64 field {key:?}")),
        _ => Err(format!("missing numeric field {key:?}")),
    }
}

fn get_u32(o: &BTreeMap<String, Value>, key: &str) -> Result<u32, String> {
    Ok(get_u64(o, key)? as u32)
}

fn get_str<'a>(o: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a str, String> {
    o.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn parse_site(s: &str) -> Result<CorruptSite, String> {
    match s {
        "exchange" => Ok(CorruptSite::Exchange),
        "resident" => Ok(CorruptSite::Resident),
        "collective" => Ok(CorruptSite::Collective),
        _ => Err(format!("unknown corruption site {s:?}")),
    }
}

fn parse_sim(s: &str) -> Result<SimKind, String> {
    match s {
        "launch" => Ok(SimKind::Launch),
        "analysis" => Ok(SimKind::Analysis),
        "compute" => Ok(SimKind::Compute),
        "copy" => Ok(SimKind::Copy),
        "collective" => Ok(SimKind::Collective),
        "log" => Ok(SimKind::Log),
        "other" => Ok(SimKind::Other),
        _ => Err(format!("unknown sim kind {s:?}")),
    }
}

fn parse_priv(s: &str) -> Result<PrivCode, String> {
    if s == "read" {
        Ok(PrivCode::Read)
    } else if s == "write" {
        Ok(PrivCode::Write)
    } else if let Some(op) = s.strip_prefix("reduce:") {
        op.parse::<u8>()
            .map(PrivCode::Reduce)
            .map_err(|_| format!("bad reduce operator in {s:?}"))
    } else {
        Err(format!("unknown privilege {s:?}"))
    }
}

fn parse_event(v: &Value) -> Result<Event, String> {
    let o = v.as_obj().ok_or("event is not an object")?;
    let ts = get_u64(o, "ts")?;
    let dur = get_u64(o, "dur")?;
    let kind = match get_str(o, "k")? {
        "task_launch" => EventKind::TaskLaunch {
            launch: get_u32(o, "launch")?,
            pos: get_u32(o, "pos")?,
            task: get_u32(o, "task")?,
        },
        "task_run" => EventKind::TaskRun {
            launch: get_u32(o, "launch")?,
            pos: get_u32(o, "pos")?,
            task: get_u32(o, "task")?,
        },
        "task_access" => EventKind::TaskAccess {
            launch: get_u32(o, "launch")?,
            pos: get_u32(o, "pos")?,
            region: get_u32(o, "region")?,
            inst: get_u64(o, "inst")?,
            fields: get_u64(o, "fields")?,
            privilege: parse_priv(get_str(o, "priv")?)?,
        },
        "dep_analysis" => EventKind::DepAnalysis {
            launch: get_u32(o, "launch")?,
            pos: get_u32(o, "pos")?,
            checks: get_u32(o, "checks")?,
        },
        "dep_edge" => EventKind::DepEdge {
            from_launch: get_u32(o, "from_launch")?,
            from_pos: get_u32(o, "from_pos")?,
            to_launch: get_u32(o, "to_launch")?,
            to_pos: get_u32(o, "to_pos")?,
        },
        "drain" => EventKind::Drain,
        "copy_issue" => EventKind::CopyIssue {
            copy: get_u32(o, "copy")?,
            pair: get_u32(o, "pair")?,
            seq: get_u32(o, "seq")?,
            elements: get_u64(o, "elements")?,
            dst_shard: get_u32(o, "dst_shard")?,
        },
        "copy_apply" => EventKind::CopyApply {
            copy: get_u32(o, "copy")?,
            pair: get_u32(o, "pair")?,
            seq: get_u32(o, "seq")?,
            region: get_u32(o, "region")?,
            inst: get_u64(o, "inst")?,
            fields: get_u64(o, "fields")?,
            reduce: matches!(o.get("reduce"), Some(Value::Bool(true))),
        },
        "barrier_arrive" => EventKind::BarrierArrive {
            generation: get_u64(o, "generation")?,
        },
        "barrier_leave" => EventKind::BarrierLeave {
            generation: get_u64(o, "generation")?,
        },
        "collective_arrive" => EventKind::CollectiveArrive {
            generation: get_u64(o, "generation")?,
        },
        "collective_leave" => EventKind::CollectiveLeave {
            generation: get_u64(o, "generation")?,
        },
        "step_begin" => EventKind::StepBegin {
            step: get_u64(o, "step")?,
        },
        "checkpoint_save" => EventKind::CheckpointSave {
            epoch: get_u64(o, "epoch")?,
        },
        "checkpoint_restore" => EventKind::CheckpointRestore {
            epoch: get_u64(o, "epoch")?,
            to_epoch: get_u64(o, "to_epoch")?,
        },
        "shard_crash" => EventKind::ShardCrash {
            shard: get_u32(o, "shard")?,
            epoch: get_u64(o, "epoch")?,
        },
        "peer_death" => EventKind::PeerDeath {
            shard: get_u32(o, "shard")?,
            cause: get_u32(o, "cause")?,
            epoch: get_u64(o, "epoch")?,
        },
        "membership_change" => EventKind::MembershipChange {
            from_shards: get_u32(o, "from_shards")?,
            to_shards: get_u32(o, "to_shards")?,
            dead_shard: get_u32(o, "dead_shard")?,
            epoch: get_u64(o, "epoch")?,
        },
        "failover_reconstruct" => EventKind::FailoverReconstruct {
            to_shards: get_u32(o, "to_shards")?,
            insts: get_u32(o, "insts")?,
            epoch: get_u64(o, "epoch")?,
        },
        "corrupt_detected" => EventKind::CorruptDetected {
            site: parse_site(get_str(o, "site")?)?,
            id: get_u32(o, "id")?,
            sub: get_u32(o, "sub")?,
            epoch: get_u64(o, "epoch")?,
        },
        "corrupt_repaired" => EventKind::CorruptRepaired {
            site: parse_site(get_str(o, "site")?)?,
            id: get_u32(o, "id")?,
            sub: get_u32(o, "sub")?,
            attempts: get_u32(o, "attempts")?,
        },
        "corrupt_escalated" => EventKind::CorruptEscalated {
            shard: get_u32(o, "shard")?,
            epoch: get_u64(o, "epoch")?,
        },
        "memo_capture" => EventKind::MemoCapture {
            epoch: get_u64(o, "epoch")?,
            key: get_u64(o, "key")?,
            tasks: get_u32(o, "tasks")?,
        },
        "memo_hit" => EventKind::MemoHit {
            epoch: get_u64(o, "epoch")?,
            key: get_u64(o, "key")?,
            tasks: get_u32(o, "tasks")?,
        },
        "memo_miss" => EventKind::MemoMiss {
            epoch: get_u64(o, "epoch")?,
            at: get_u32(o, "at")?,
        },
        "memo_invalidate" => EventKind::MemoInvalidate {
            templates: get_u32(o, "templates")?,
        },
        "memo_replay" => EventKind::MemoReplay {
            launch: get_u32(o, "launch")?,
            pos: get_u32(o, "pos")?,
        },
        "log_append" => EventKind::LogAppend {
            epoch: get_u64(o, "epoch")?,
            batch: get_u32(o, "batch")?,
            records: get_u32(o, "records")?,
        },
        "log_combine" => EventKind::LogCombine {
            batch: get_u32(o, "batch")?,
            records: get_u32(o, "records")?,
        },
        "log_consume" => EventKind::LogConsume {
            replica: get_u32(o, "replica")?,
            batch: get_u32(o, "batch")?,
            records: get_u32(o, "records")?,
            lag: get_u32(o, "lag")?,
        },
        "job_admit" => EventKind::JobAdmit {
            job: get_u64(o, "job")?,
            tenant: get_u32(o, "tenant")?,
            queued: get_u32(o, "queued")?,
        },
        "job_shed" => EventKind::JobShed {
            job: get_u64(o, "job")?,
            tenant: get_u32(o, "tenant")?,
            queued: get_u32(o, "queued")?,
        },
        "job_retry" => EventKind::JobRetry {
            job: get_u64(o, "job")?,
            tenant: get_u32(o, "tenant")?,
            attempt: get_u32(o, "attempt")?,
        },
        "job_degrade" => EventKind::JobDegrade {
            tenant: get_u32(o, "tenant")?,
            from_shards: get_u32(o, "from_shards")?,
            to_shards: get_u32(o, "to_shards")?,
        },
        "pass" => EventKind::Pass {
            name: intern(get_str(o, "name")?),
        },
        "sim_task" => EventKind::SimTask {
            kind: parse_sim(get_str(o, "kind")?)?,
            node: get_u32(o, "node")?,
            step: get_u32(o, "step")?,
        },
        "counter" => EventKind::Counter {
            name: intern(get_str(o, "name")?),
            value: o
                .get("value")
                .and_then(Value::as_num)
                .ok_or("counter without a value")?,
        },
        "mark" => EventKind::Mark {
            name: intern(get_str(o, "name")?),
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(Event { ts, dur, kind })
}

fn parse_tracks(v: &Value) -> Result<Trace, String> {
    let arr = v.as_arr().ok_or("regentTracks is not an array")?;
    let mut tracks = Vec::with_capacity(arr.len());
    for t in arr {
        let o = t.as_obj().ok_or("track is not an object")?;
        let name = get_str(o, "name")?.to_string();
        let dropped = get_u64(o, "dropped")?;
        let events = o
            .get("events")
            .and_then(Value::as_arr)
            .ok_or("track without an events array")?
            .iter()
            .map(parse_event)
            .collect::<Result<Vec<_>, _>>()?;
        tracks.push(Track {
            name,
            events,
            dropped,
        });
    }
    Ok(Trace { tracks })
}

/// Parses a trace file: either a native document
/// (`{"regentTrace":1,"tracks":[…]}`) or a Chrome `trace_event`
/// document carrying the embedded `regentTracks` sidecar. A plain
/// Chrome file without the sidecar is rejected with an explanation
/// (its events are lossy display records, not an execution log).
pub fn import_trace(text: &str) -> Result<Trace, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if let Some(tracks) = doc.get("regentTracks") {
        return parse_tracks(tracks);
    }
    if doc.get("regentTrace").is_some() {
        let tracks = doc.get("tracks").ok_or("native document without tracks")?;
        return parse_tracks(tracks);
    }
    Err(
        "no regentTracks key: this file is not a regent trace (a bare Chrome trace_event \
         file cannot be re-analyzed; re-export it with --trace from this repo's tools)"
            .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn sample_trace() -> Trace {
        let tracer = Tracer::enabled();
        let mut b = tracer.buffer("shard-0");
        b.push(
            0,
            10,
            EventKind::TaskRun {
                launch: 1,
                pos: 2,
                task: 3,
            },
        );
        b.push(
            0,
            0,
            EventKind::TaskAccess {
                launch: 1,
                pos: 2,
                region: 4,
                inst: u64::MAX - 7, // exercises the >2^53 string path
                fields: 1u64 << 63,
                privilege: PrivCode::Reduce(2),
            },
        );
        b.push(
            12,
            0,
            EventKind::MemoHit {
                epoch: 3,
                key: 0xdead_beef_dead_beef,
                tasks: 9,
            },
        );
        b.push(14, 2, EventKind::MemoReplay { launch: 5, pos: 0 });
        b.push(20, 1, EventKind::Pass { name: "lower" });
        b.push(
            22,
            0,
            EventKind::Counter {
                name: "q",
                value: -2.5,
            },
        );
        b.push(
            23,
            4,
            EventKind::SimTask {
                kind: SimKind::Analysis,
                node: 7,
                step: 2,
            },
        );
        b.push(
            30,
            0,
            EventKind::CorruptDetected {
                site: CorruptSite::Collective,
                id: 1,
                sub: 2,
                epoch: 5,
            },
        );
        b.push(
            32,
            6,
            EventKind::JobAdmit {
                job: u64::MAX - 3, // exercises the >2^53 string path
                tenant: 2,
                queued: 5,
            },
        );
        b.push(
            40,
            0,
            EventKind::JobRetry {
                job: 7,
                tenant: 2,
                attempt: 1,
            },
        );
        b.push(
            41,
            0,
            EventKind::JobDegrade {
                tenant: 2,
                from_shards: 4,
                to_shards: 2,
            },
        );
        b.push(
            42,
            0,
            EventKind::PeerDeath {
                shard: 3,
                cause: 0,
                epoch: 2,
            },
        );
        b.push(
            43,
            0,
            EventKind::MembershipChange {
                from_shards: 4,
                to_shards: 3,
                dead_shard: 3,
                epoch: 2,
            },
        );
        b.push(
            44,
            7,
            EventKind::FailoverReconstruct {
                to_shards: 3,
                insts: 12,
                epoch: 2,
            },
        );
        drop(b);
        let mut b = tracer.buffer("shard-1 \"x\"");
        b.push(
            2,
            3,
            EventKind::CopyApply {
                copy: 1,
                pair: 2,
                seq: 3,
                region: 4,
                inst: 0xffff_ffff_ffff_fff0,
                fields: 0b101,
                reduce: true,
            },
        );
        drop(b);
        tracer.take()
    }

    #[test]
    fn native_roundtrip_is_lossless() {
        let trace = sample_trace();
        let text = export_native(&trace);
        let back = import_trace(&text).unwrap();
        assert_eq!(back.tracks.len(), trace.tracks.len());
        for (a, b) in trace.tracks.iter().zip(back.tracks.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn chrome_export_embeds_importable_tracks() {
        let trace = sample_trace();
        let chrome = crate::export_chrome(&trace);
        let back = import_trace(&chrome).unwrap();
        assert_eq!(back.tracks[0].events, trace.tracks[0].events);
    }

    #[test]
    fn dropped_counts_survive() {
        let mut trace = sample_trace();
        trace.tracks[0].dropped = 41;
        let back = import_trace(&export_native(&trace)).unwrap();
        assert_eq!(back.tracks[0].dropped, 41);
    }

    #[test]
    fn bare_chrome_and_garbage_are_rejected() {
        assert!(import_trace("{\"traceEvents\":[]}").is_err());
        assert!(import_trace("not json").is_err());
    }

    #[test]
    fn interning_dedupes() {
        let a = intern("segment-sequential-test");
        let b = intern("segment-sequential-test");
        assert!(std::ptr::eq(a, b));
    }
}
