//! A terminal-friendly timeline: one row per track, spans rendered as
//! `=` runs and instants as `|`, scaled to a fixed width.

use crate::tracer::Trace;
use std::fmt::Write as _;

/// Renders `trace` as an ASCII timeline `width` columns wide (plus the
/// track-name gutter). Returns an empty string for an empty trace.
pub fn ascii_timeline(trace: &Trace, width: usize) -> String {
    let width = width.max(10);
    let Some((t0, t1)) = trace.time_bounds() else {
        return String::new();
    };
    let extent = (t1 - t0).max(1);
    let gutter = trace
        .tracks
        .iter()
        .map(|t| t.name.len())
        .max()
        .unwrap_or(5)
        .clamp(5, 24);
    let col = |ts: u64| -> usize {
        (((ts - t0) as u128 * (width as u128 - 1)) / extent as u128) as usize
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:gutter$}  0{}{:.3} ms",
        "",
        " ".repeat(width.saturating_sub(10)),
        extent as f64 / 1e6
    );
    for track in &trace.tracks {
        let mut row = vec![b'.'; width];
        // Spans first, instants on top so they stay visible.
        for e in &track.events {
            if e.dur > 0 {
                let (a, b) = (col(e.ts), col(e.ts + e.dur));
                for c in &mut row[a..=b.min(width - 1)] {
                    *c = b'=';
                }
            }
        }
        for e in &track.events {
            if e.dur == 0 {
                row[col(e.ts)] = b'|';
            }
        }
        let mut name = track.name.clone();
        name.truncate(gutter);
        let _ = writeln!(
            out,
            "{:gutter$}  {}",
            name,
            String::from_utf8(row).expect("ascii row")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use crate::tracer::Track;

    #[test]
    fn renders_rows_for_every_track() {
        let trace = Trace {
            tracks: vec![
                Track {
                    name: "control".into(),
                    events: vec![Event {
                        ts: 0,
                        dur: 100,
                        kind: EventKind::Mark { name: "a" },
                    }],
                    dropped: 0,
                },
                Track {
                    name: "worker-0".into(),
                    events: vec![Event {
                        ts: 50,
                        dur: 0,
                        kind: EventKind::Mark { name: "b" },
                    }],
                    dropped: 0,
                },
            ],
        };
        let art = ascii_timeline(&trace, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 tracks");
        assert!(lines[1].contains("control"));
        assert!(lines[1].contains('='));
        assert!(lines[2].contains('|'));
    }

    #[test]
    fn empty_trace_is_empty_art() {
        assert_eq!(ascii_timeline(&Trace::default(), 40), "");
    }
}
