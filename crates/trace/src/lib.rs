//! # regent-trace
//!
//! A Legion Prof / Legion Spy-style observability subsystem for the
//! control-replication stack: structured event recording from every
//! executor, the discrete-event machine simulator, and the CR compiler
//! pipeline, plus three consumers of the recorded stream:
//!
//! * [`prof`] — timeline profiling: per-track utilization, per-timestep
//!   control-thread analysis cost (the O(N)-vs-O(1) evidence at the
//!   heart of the paper), and critical-path length through the
//!   task/copy/sync DAG.
//! * [`spy`] — event-graph validation: reconstructs the executed
//!   happens-before graph and certifies that every RAW/WAR/WAW
//!   dependence implied by the tasks' privileges (§2.1) was actually
//!   ordered — an independent correctness oracle beside bit-identical
//!   region equivalence.
//! * [`chrome`] — a hand-rolled (no serde) Chrome `trace_event` JSON
//!   exporter, loadable in `chrome://tracing` / Perfetto, plus an
//!   [`ascii`] timeline for terminals. [`json`] is the matching
//!   minimal parser used to round-trip-check exports.
//! * [`critical`] — critical-path *blame* attribution: decomposes the
//!   longest dependence chain by phase (analysis / copy / waits /
//!   exec), per track and per epoch, plus a load-imbalance report.
//! * [`serial`] — lossless trace (de)serialization; [`export_chrome`]
//!   embeds it so one trace file is both Perfetto-loadable and
//!   re-analyzable by the `regent-prof` CLI.
//! * [`artifact`] — the machine-readable bench-result schema
//!   (`BENCH_*.json`) with baseline regression checking.
//!
//! ## Recording model
//!
//! A shared [`Tracer`] hands out per-worker [`TraceBuf`]s. Each buffer
//! is owned by exactly one thread and records into a private ring
//! (no locks, no atomics on the hot path); buffers flush into the
//! tracer's central store at quiescence (explicitly or on drop). When
//! the tracer is disabled, recording is zero-cost: no timestamp reads,
//! no event storage, and no allocation (see `tests/zero_alloc.rs`).
//!
//! Timestamps are monotonic nanoseconds from the tracer's epoch
//! ([`std::time::Instant`]); the simulator records *virtual* time on
//! the same scale.

#![warn(missing_docs)]

pub mod artifact;
pub mod ascii;
pub mod chrome;
pub mod critical;
pub mod event;
pub mod flight;
pub mod graph;
pub mod json;
pub mod prof;
pub mod ring;
pub mod serial;
pub mod spy;
pub mod tracer;

pub use artifact::{
    check as check_entries, entries_to_json, merge as merge_entries, parse_entries, BenchEntry,
};
pub use ascii::ascii_timeline;
pub use chrome::export_chrome;
pub use critical::{
    blame_report, classify, imbalance_report, sim_blame, Blame, BlameReport, ImbalanceReport, Phase,
};
pub use event::{fields_mask, CorruptSite, Event, EventKind, PrivCode, SimKind};
pub use flight::{flight, FlightRecorder, DEFAULT_FLIGHT_EVENTS};
pub use graph::{build_graph, EventGraph};
pub use prof::{
    control_cost_per_step, failover_summary, integrity_summary, mean_step_cost, memo_summary,
    sim_control_cost_per_step, FailoverSummary, IntegritySummary, MemoSummary, ProfReport,
};
pub use ring::Ring;
pub use serial::{export_native, import_trace};
pub use spy::{validate, AllOverlap, OverlapOracle, SpyReport, Violation};
pub use tracer::{Trace, TraceBuf, Tracer, Track};
