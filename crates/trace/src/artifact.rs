//! Machine-readable bench artifacts: a stable JSON schema for
//! benchmark results (`BENCH_PR5.json` and successors), so perf
//! regressions are caught mechanically instead of by eyeballing
//! figures.
//!
//! A document is `{"benchSchema":1,"entries":[…]}`; each entry is keyed
//! by `(app, size, shards, executor)` and carries the measured wall
//! time, the critical-path length, the per-phase blame vector
//! ([`crate::critical`]), and a flat metrics snapshot. [`merge`]
//! lets several figure binaries accumulate into one file; [`check`]
//! compares a fresh run against a checked-in baseline and reports
//! regressions beyond a tolerance.

use crate::critical::{Blame, Phase};
use crate::json::{escape_into, parse, Value};
use std::fmt::Write as _;

/// One benchmark measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Application name (`stencil`, `miniaero`, `pennant`, `circuit`).
    pub app: String,
    /// Workload size description (stable across runs of one config).
    pub size: String,
    /// Shards / nodes the run used.
    pub shards: u32,
    /// Execution model (`spmd`, `implicit`, `implicit-memo`, …).
    pub executor: String,
    /// End-to-end wall time, nanoseconds (virtual ns for simulated
    /// runs).
    pub wall_ns: u64,
    /// Critical-path length, nanoseconds.
    pub critical_path_ns: u64,
    /// Per-phase critical-path blame.
    pub blame: Blame,
    /// Flat metrics snapshot (name → value); empty for simulated runs.
    pub metrics: Vec<(String, f64)>,
}

impl BenchEntry {
    /// The identity key entries are merged and compared by.
    pub fn key(&self) -> (String, String, u32, String) {
        (
            self.app.clone(),
            self.size.clone(),
            self.shards,
            self.executor.clone(),
        )
    }
}

/// Serializes `entries` as a versioned artifact document.
pub fn entries_to_json(entries: &[BenchEntry]) -> String {
    let mut out = String::from("{\"benchSchema\":1,\"entries\":[\n");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\"app\":\"");
        escape_into(&mut out, &e.app);
        out.push_str("\",\"size\":\"");
        escape_into(&mut out, &e.size);
        write!(out, "\",\"shards\":{},\"executor\":\"", e.shards).unwrap();
        escape_into(&mut out, &e.executor);
        write!(
            out,
            "\",\"wall_ns\":{},\"critical_path_ns\":{},\"blame\":{{",
            e.wall_ns, e.critical_path_ns
        )
        .unwrap();
        let mut first = true;
        for p in Phase::ALL {
            let ns = e.blame.get(p);
            if ns == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write!(out, "\"{}\":{}", p.name(), ns).unwrap();
        }
        out.push_str("},\"metrics\":{");
        for (i, (name, v)) in e.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            let v = if v.is_finite() { *v } else { 0.0 };
            write!(out, "\":{v}").unwrap();
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

fn parse_entry(v: &Value) -> Result<BenchEntry, String> {
    let o = v.as_obj().ok_or("entry is not an object")?;
    let str_field = |k: &str| -> Result<String, String> {
        o.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("entry missing string field {k:?}"))
    };
    let num_field = |k: &str| -> Result<u64, String> {
        o.get(k)
            .and_then(Value::as_num)
            .map(|n| n as u64)
            .ok_or_else(|| format!("entry missing numeric field {k:?}"))
    };
    let mut blame = Blame::default();
    if let Some(b) = o.get("blame").and_then(Value::as_obj) {
        for (name, v) in b {
            let ns = v.as_num().ok_or("blame value is not a number")? as u64;
            let phase = Phase::ALL
                .into_iter()
                .find(|p| p.name() == name)
                .ok_or_else(|| format!("unknown blame phase {name:?}"))?;
            blame.add(phase, ns);
        }
    }
    let mut metrics = Vec::new();
    if let Some(m) = o.get("metrics").and_then(Value::as_obj) {
        for (name, v) in m {
            metrics.push((
                name.clone(),
                v.as_num().ok_or("metric value is not a number")?,
            ));
        }
    }
    Ok(BenchEntry {
        app: str_field("app")?,
        size: str_field("size")?,
        shards: num_field("shards")? as u32,
        executor: str_field("executor")?,
        wall_ns: num_field("wall_ns")?,
        critical_path_ns: num_field("critical_path_ns")?,
        blame,
        metrics,
    })
}

/// Parses an artifact document produced by [`entries_to_json`].
pub fn parse_entries(text: &str) -> Result<Vec<BenchEntry>, String> {
    let doc = parse(text).map_err(|e| format!("artifact is not valid JSON: {e}"))?;
    match doc.get("benchSchema").and_then(Value::as_num) {
        Some(1.0) => {}
        _ => return Err("artifact missing benchSchema:1".to_string()),
    }
    doc.get("entries")
        .and_then(Value::as_arr)
        .ok_or("artifact missing entries array")?
        .iter()
        .map(parse_entry)
        .collect()
}

/// Merges `fresh` into `base`: entries with the same key are replaced,
/// new keys appended. Returns the merged list (stable order: base
/// order, then new keys in `fresh` order).
pub fn merge(base: Vec<BenchEntry>, fresh: Vec<BenchEntry>) -> Vec<BenchEntry> {
    let mut out = base;
    for e in fresh {
        match out.iter_mut().find(|b| b.key() == e.key()) {
            Some(slot) => *slot = e,
            None => out.push(e),
        }
    }
    out
}

/// Compares `current` against `baseline`: any entry whose `wall_ns` or
/// `critical_path_ns` exceeds the baseline's by more than `tol_pct`
/// percent is a regression. Keys missing from the baseline are noted
/// but never fail. Returns `Ok(notes)` or `Err(regressions)`.
pub fn check(
    current: &[BenchEntry],
    baseline: &[BenchEntry],
    tol_pct: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut notes = Vec::new();
    let mut regressions = Vec::new();
    for c in current {
        let Some(b) = baseline.iter().find(|b| b.key() == c.key()) else {
            notes.push(format!(
                "{}/{}/n{}/{}: no baseline entry (new measurement)",
                c.app, c.size, c.shards, c.executor
            ));
            continue;
        };
        for (what, cur, base) in [
            ("wall_ns", c.wall_ns, b.wall_ns),
            ("critical_path_ns", c.critical_path_ns, b.critical_path_ns),
        ] {
            let limit = base as f64 * (1.0 + tol_pct / 100.0);
            if cur as f64 > limit {
                regressions.push(format!(
                    "{}/{}/n{}/{}: {what} regressed {} -> {} (+{:.1}%, tolerance {tol_pct}%)",
                    c.app,
                    c.size,
                    c.shards,
                    c.executor,
                    base,
                    cur,
                    (cur as f64 / base as f64 - 1.0) * 100.0
                ));
            }
        }
    }
    if regressions.is_empty() {
        Ok(notes)
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(app: &str, shards: u32, executor: &str, wall: u64) -> BenchEntry {
        let mut blame = Blame::default();
        blame.add(Phase::Exec, wall / 2);
        blame.add(Phase::DepAnalysis, wall / 4);
        BenchEntry {
            app: app.into(),
            size: "steps4".into(),
            shards,
            executor: executor.into(),
            wall_ns: wall,
            critical_path_ns: wall * 3 / 4,
            blame,
            metrics: vec![("launches".into(), 128.0)],
        }
    }

    #[test]
    fn roundtrips() {
        let entries = vec![
            entry("stencil", 4, "spmd", 1_000_000),
            entry("stencil", 4, "implicit", 2_000_000),
        ];
        let text = entries_to_json(&entries);
        let back = parse_entries(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn merge_replaces_matching_keys() {
        let base = vec![
            entry("stencil", 4, "spmd", 100),
            entry("circuit", 4, "spmd", 200),
        ];
        let fresh = vec![
            entry("stencil", 4, "spmd", 150),
            entry("pennant", 8, "spmd", 50),
        ];
        let merged = merge(base, fresh);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].wall_ns, 150);
        assert_eq!(merged[2].app, "pennant");
    }

    #[test]
    fn check_flags_regressions_and_tolerates_noise() {
        let baseline = vec![entry("stencil", 4, "spmd", 1000)];
        // +5% under a 10% tolerance: fine.
        let ok = vec![entry("stencil", 4, "spmd", 1050)];
        assert!(check(&ok, &baseline, 10.0).is_ok());
        // +50%: regression.
        let bad = vec![entry("stencil", 4, "spmd", 1500)];
        let errs = check(&bad, &baseline, 10.0).unwrap_err();
        assert!(errs[0].contains("wall_ns regressed"), "{errs:?}");
        // Unknown key: a note, not a failure.
        let new = vec![entry("miniaero", 4, "spmd", 1)];
        let notes = check(&new, &baseline, 10.0).unwrap();
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_entries("{}").is_err());
        assert!(parse_entries("{\"benchSchema\":2,\"entries\":[]}").is_err());
        assert!(parse_entries("{\"benchSchema\":1,\"entries\":[{\"app\":1}]}").is_err());
    }
}
