//! The recorder: a shared [`Tracer`] handing out per-worker
//! [`TraceBuf`]s, and the collected [`Trace`] they flush into.

use crate::event::{Event, EventKind};
use crate::ring::Ring;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-buffer event capacity (events beyond it wrap, dropping
/// the oldest — see [`crate::ring::Ring`]).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// One flushed event stream: all events recorded by buffers sharing a
/// name, in recording order per buffer.
#[derive(Clone, Debug, Default)]
pub struct Track {
    /// Track name (e.g. `"control"`, `"shard-3"`, `"cr/n64"`).
    pub name: String,
    /// Events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring wrap-around.
    pub dropped: u64,
}

/// A collected trace: every flushed track.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Tracks in first-flush order.
    pub tracks: Vec<Track>,
}

impl Trace {
    /// Total events across all tracks.
    pub fn num_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// The track with the given name, if any.
    pub fn track(&self, name: &str) -> Option<&Track> {
        self.tracks.iter().find(|t| t.name == name)
    }

    /// `[min ts, max ts+dur]` over all events, or `None` when empty.
    pub fn time_bounds(&self) -> Option<(u64, u64)> {
        let mut bounds: Option<(u64, u64)> = None;
        for t in &self.tracks {
            for e in &t.events {
                let (lo, hi) = bounds.unwrap_or((e.ts, e.ts + e.dur));
                bounds = Some((lo.min(e.ts), hi.max(e.ts + e.dur)));
            }
        }
        bounds
    }
}

/// The shared recorder. Cheap to clone by `Arc`; a disabled tracer
/// makes every recording operation a no-op (a single branch).
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    epoch: Instant,
    store: Mutex<Vec<Track>>,
}

impl Tracer {
    /// An enabled tracer with the default per-buffer capacity.
    pub fn enabled() -> Arc<Tracer> {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer whose buffers hold at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: true,
            capacity,
            epoch: Instant::now(),
            store: Mutex::new(Vec::new()),
        })
    }

    /// A disabled tracer: buffers record nothing and allocate nothing.
    pub fn disabled() -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: false,
            capacity: 1,
            epoch: Instant::now(),
            store: Mutex::new(Vec::new()),
        })
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Creates a recording buffer for one worker/thread. When the
    /// tracer is disabled this allocates nothing.
    pub fn buffer(self: &Arc<Self>, name: &str) -> TraceBuf {
        TraceBuf {
            enabled: self.enabled,
            name: if self.enabled {
                name.to_string()
            } else {
                String::new()
            },
            ring: if self.enabled {
                Some(Ring::new(self.capacity))
            } else {
                None
            },
            tracer: Arc::clone(self),
        }
    }

    /// Takes everything flushed so far, leaving the store empty.
    /// Call after the instrumented execution has quiesced (all buffers
    /// flushed or dropped).
    pub fn take(&self) -> Trace {
        Trace {
            tracks: std::mem::take(&mut *self.store.lock().unwrap()),
        }
    }

    /// Merges a whole collected [`Trace`] into this tracer's store,
    /// track by track (same-name tracks concatenate, matching
    /// [`Tracer::buffer`] flush semantics). Used by the failover
    /// executors: each recovery attempt records into a private inner
    /// tracer so aborted attempts can be discarded wholesale, and only
    /// the successful attempt's trace is absorbed into the caller's.
    /// Timestamps keep the inner tracer's epoch — per-track ordering is
    /// preserved, which is all the Spy validator needs.
    pub fn absorb(&self, trace: Trace) {
        if !self.enabled {
            return;
        }
        for track in trace.tracks {
            self.flush_into_store(&track.name, track.events, track.dropped);
        }
    }

    fn flush_into_store(&self, name: &str, events: Vec<Event>, dropped: u64) {
        if events.is_empty() && dropped == 0 {
            return;
        }
        let mut store = self.store.lock().unwrap();
        if let Some(t) = store.iter_mut().find(|t| t.name == name) {
            t.events.extend(events);
            t.dropped += dropped;
        } else {
            store.push(Track {
                name: name.to_string(),
                events,
                dropped,
            });
        }
    }
}

/// A per-worker recording buffer. Owned by one thread; records into a
/// private ring with no synchronization, and flushes into the tracer at
/// quiescence (explicit [`TraceBuf::flush`] or drop).
pub struct TraceBuf {
    enabled: bool,
    name: String,
    ring: Option<Ring<Event>>,
    tracer: Arc<Tracer>,
}

impl TraceBuf {
    /// Whether this buffer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the tracer epoch (0 when disabled — no clock
    /// read).
    pub fn now(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.tracer.epoch.elapsed().as_nanos() as u64
    }

    /// Records an event with an explicit interval.
    pub fn push(&mut self, ts: u64, dur: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.ring
            .as_mut()
            .expect("enabled buffer has a ring")
            .push(Event { ts, dur, kind });
    }

    /// Records an instant event at the current time.
    pub fn instant(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let t = self.now();
        self.push(t, 0, kind);
    }

    /// Records a span from `start` (a prior [`TraceBuf::now`]) to the
    /// current time.
    pub fn span_since(&mut self, start: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let end = self.now();
        self.push(start, end.saturating_sub(start), kind);
    }

    /// Flushes recorded events into the tracer's central store. Called
    /// automatically on drop; call explicitly at known quiescence
    /// points to bound memory.
    pub fn flush(&mut self) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.ring.as_mut() {
            let dropped = ring.dropped();
            let events = ring.drain_ordered();
            // Fresh ring: the drop counter was reported with this flush.
            *ring = Ring::new(self.tracer.capacity);
            self.tracer.flush_into_store(&self.name, events, dropped);
        }
    }
}

impl Drop for TraceBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn record_flush_take_roundtrip() {
        let tracer = Tracer::enabled();
        let mut a = tracer.buffer("a");
        let mut b = tracer.buffer("b");
        a.instant(EventKind::Mark { name: "x" });
        let t0 = b.now();
        b.span_since(t0, EventKind::Pass { name: "p" });
        a.instant(EventKind::Mark { name: "y" });
        drop(a);
        drop(b);
        let trace = tracer.take();
        assert_eq!(trace.tracks.len(), 2);
        let ta = trace.track("a").unwrap();
        assert_eq!(ta.events.len(), 2);
        assert!(matches!(ta.events[0].kind, EventKind::Mark { name: "x" }));
        assert!(matches!(ta.events[1].kind, EventKind::Mark { name: "y" }));
        assert!(ta.events[0].ts <= ta.events[1].ts, "monotonic timestamps");
        let tb = trace.track("b").unwrap();
        assert_eq!(tb.events.len(), 1);
        // take() drained the store.
        assert_eq!(tracer.take().tracks.len(), 0);
    }

    #[test]
    fn same_name_buffers_merge_into_one_track() {
        let tracer = Tracer::enabled();
        {
            let mut a = tracer.buffer("shard-0");
            a.instant(EventKind::Mark { name: "seg1" });
        }
        {
            let mut a = tracer.buffer("shard-0");
            a.instant(EventKind::Mark { name: "seg2" });
        }
        let trace = tracer.take();
        assert_eq!(trace.tracks.len(), 1);
        assert_eq!(trace.tracks[0].events.len(), 2);
    }

    #[test]
    fn absorb_merges_tracks() {
        let outer = Tracer::enabled();
        {
            let mut b = outer.buffer("shard-0");
            b.instant(EventKind::Mark { name: "outer" });
        }
        let inner = Tracer::enabled();
        {
            let mut b = inner.buffer("shard-0");
            b.instant(EventKind::Mark { name: "inner" });
            let mut c = inner.buffer("shard-1");
            c.instant(EventKind::Mark { name: "other" });
        }
        outer.absorb(inner.take());
        let trace = outer.take();
        assert_eq!(trace.tracks.len(), 2);
        let t0 = trace.track("shard-0").unwrap();
        assert_eq!(t0.events.len(), 2, "same-name tracks concatenate");
        assert_eq!(trace.track("shard-1").unwrap().events.len(), 1);
        // A disabled tracer absorbs nothing.
        let off = Tracer::disabled();
        let inner = Tracer::enabled();
        inner.buffer("x").instant(EventKind::Mark { name: "m" });
        off.absorb(inner.take());
        assert_eq!(off.take().num_events(), 0);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let mut b = tracer.buffer("x");
        assert_eq!(b.now(), 0);
        b.instant(EventKind::Mark { name: "m" });
        b.flush();
        assert_eq!(tracer.take().num_events(), 0);
    }

    #[test]
    fn ring_overflow_reports_dropped() {
        let tracer = Tracer::with_capacity(4);
        let mut b = tracer.buffer("w");
        for _ in 0..10 {
            b.instant(EventKind::Mark { name: "m" });
        }
        drop(b);
        let trace = tracer.take();
        assert_eq!(trace.tracks[0].events.len(), 4);
        assert_eq!(trace.tracks[0].dropped, 6);
    }

    #[test]
    fn time_bounds_cover_all_tracks() {
        let mut trace = Trace::default();
        trace.tracks.push(Track {
            name: "a".into(),
            events: vec![Event {
                ts: 10,
                dur: 5,
                kind: EventKind::Mark { name: "m" },
            }],
            dropped: 0,
        });
        trace.tracks.push(Track {
            name: "b".into(),
            events: vec![Event {
                ts: 2,
                dur: 1,
                kind: EventKind::Mark { name: "m" },
            }],
            dropped: 0,
        });
        assert_eq!(trace.time_bounds(), Some((2, 15)));
    }
}
