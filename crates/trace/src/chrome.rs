//! Chrome `trace_event` JSON exporter (hand-rolled, no serde).
//!
//! The output is the "JSON Object Format" understood by
//! `chrome://tracing` and Perfetto: a `traceEvents` array of complete
//! (`"ph":"X"`), instant (`"ph":"i"`), counter (`"ph":"C"`), and
//! metadata (`"ph":"M"`) events. Timestamps are microseconds; each
//! track becomes one thread (`tid`) named via `thread_name` metadata.

use crate::event::{Event, EventKind, PrivCode, SimKind};
use crate::json::escape_into;
use crate::tracer::Trace;
use std::fmt::Write as _;

/// Exports a trace as Chrome trace-event JSON. SPMD copy send→recv
/// pairs additionally get flow events (`"ph":"s"`/`"ph":"f"`) so
/// Perfetto draws arrows between shard tracks, and the full lossless
/// event log is embedded under a sibling `regentTracks` key (see
/// [`crate::serial`]) so the same file can be re-analyzed offline.
pub fn export_chrome(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 * 1024 + trace.num_events() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, track) in trace.tracks.iter().enumerate() {
        sep(&mut out, &mut first);
        write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\""
        )
        .unwrap();
        escape_into(&mut out, &track.name);
        out.push_str("\"}}");
        for e in &track.events {
            sep(&mut out, &mut first);
            write_event(&mut out, tid, e);
        }
    }
    write_copy_flows(&mut out, trace, &mut first);
    out.push_str("],\"displayTimeUnit\":\"ms\",\"regentTracks\":");
    out.push_str(&crate::serial::tracks_json(trace));
    out.push('}');
    out
}

/// Emits one flow (`s` start on the issue span, `f` finish bound to
/// the enclosing apply span) per matched copy pair: the k-th issue of a
/// `(copy, pair, seq)` identity links to its k-th apply — the same
/// matching rule [`crate::build_graph`] uses for happens-before edges.
fn write_copy_flows(out: &mut String, trace: &Trace, first: &mut bool) {
    use std::collections::HashMap;
    // (copy, pair, seq) -> queues of (tid, ts) for issues and applies.
    #[allow(clippy::type_complexity)]
    let mut issues: HashMap<(u32, u32, u32), Vec<(usize, u64)>> = HashMap::new();
    let mut applies: HashMap<(u32, u32, u32), Vec<(usize, u64)>> = HashMap::new();
    for (tid, track) in trace.tracks.iter().enumerate() {
        for e in &track.events {
            match e.kind {
                EventKind::CopyIssue {
                    copy, pair, seq, ..
                } => issues
                    .entry((copy, pair, seq))
                    .or_default()
                    .push((tid, e.ts)),
                EventKind::CopyApply {
                    copy, pair, seq, ..
                } => applies
                    .entry((copy, pair, seq))
                    .or_default()
                    .push((tid, e.ts)),
                _ => {}
            }
        }
    }
    let mut keys: Vec<_> = applies.keys().copied().collect();
    keys.sort_unstable();
    let mut id = 0u64;
    for key in keys {
        let (copy, pair, _) = key;
        let iss = issues.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
        for (k, &(apply_tid, apply_ts)) in applies[&key].iter().enumerate() {
            let Some(&(issue_tid, issue_ts)) = iss.get(k) else {
                continue; // unmatched apply: no arrow
            };
            id += 1;
            sep(out, first);
            write!(
                out,
                "{{\"ph\":\"s\",\"id\":{id},\"name\":\"copy {copy}.{pair}\",\"cat\":\"copy\",\
                 \"pid\":0,\"tid\":{issue_tid},\"ts\":{}}}",
                us(issue_ts)
            )
            .unwrap();
            sep(out, first);
            write!(
                out,
                "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"name\":\"copy {copy}.{pair}\",\
                 \"cat\":\"copy\",\"pid\":0,\"tid\":{apply_tid},\"ts\":{}}}",
                us(apply_ts)
            )
            .unwrap();
        }
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn write_event(out: &mut String, tid: usize, e: &Event) {
    if let EventKind::Counter { name, value } = e.kind {
        let v = if value.is_finite() { value } else { 0.0 };
        write!(
            out,
            "{{\"ph\":\"C\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"args\":{{\"value\":{v}}}}}",
            us(e.ts)
        )
        .unwrap();
        return;
    }
    let name = kind_name(&e.kind);
    let args = kind_args(&e.kind);
    if e.dur > 0 {
        write!(
            out,
            "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            us(e.ts),
            us(e.dur)
        )
        .unwrap();
    } else {
        write!(
            out,
            "{{\"ph\":\"i\",\"name\":\"{name}\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"args\":{{{args}}}}}",
            us(e.ts)
        )
        .unwrap();
    }
}

fn priv_str(p: PrivCode) -> &'static str {
    match p {
        PrivCode::Read => "read",
        PrivCode::Write => "readwrite",
        PrivCode::Reduce(_) => "reduce",
    }
}

/// Short display name for a sim task kind.
pub fn sim_kind_name(k: SimKind) -> &'static str {
    match k {
        SimKind::Launch => "launch",
        SimKind::Analysis => "analysis",
        SimKind::Compute => "compute",
        SimKind::Copy => "copy",
        SimKind::Collective => "collective",
        SimKind::Log => "log",
        SimKind::Other => "sim",
    }
}

fn kind_name(k: &EventKind) -> String {
    match k {
        EventKind::TaskLaunch { launch, pos, .. } => format!("launch L{launch}[{pos}]"),
        EventKind::TaskRun { launch, pos, .. } => format!("run L{launch}[{pos}]"),
        EventKind::TaskAccess { launch, pos, .. } => format!("access L{launch}[{pos}]"),
        EventKind::DepAnalysis { launch, pos, .. } => format!("analyze L{launch}[{pos}]"),
        EventKind::DepEdge { .. } => "dep edge".into(),
        EventKind::Drain => "drain".into(),
        EventKind::CopyIssue { copy, pair, .. } => format!("copy {copy}.{pair} send"),
        EventKind::CopyApply { copy, pair, .. } => format!("copy {copy}.{pair} apply"),
        EventKind::BarrierArrive { .. } => "barrier arrive".into(),
        EventKind::BarrierLeave { .. } => "barrier leave".into(),
        EventKind::CollectiveArrive { .. } => "collective arrive".into(),
        EventKind::CollectiveLeave { .. } => "collective leave".into(),
        EventKind::StepBegin { step } => format!("step {step}"),
        EventKind::CheckpointSave { epoch } => format!("checkpoint save e{epoch}"),
        EventKind::CheckpointRestore { epoch, to_epoch } => {
            format!("restore e{epoch}->e{to_epoch}")
        }
        EventKind::ShardCrash { shard, epoch } => format!("crash s{shard} e{epoch}"),
        EventKind::PeerDeath {
            shard,
            cause,
            epoch,
        } => {
            let why = match cause {
                0 => "killed",
                1 => "panicked",
                _ => "hung",
            };
            format!("peer death s{shard} ({why}) e{epoch}")
        }
        EventKind::MembershipChange {
            from_shards,
            to_shards,
            dead_shard,
            epoch,
        } => format!("membership {from_shards}->{to_shards} (-s{dead_shard}) e{epoch}"),
        EventKind::FailoverReconstruct {
            to_shards,
            insts,
            epoch,
        } => format!("reconstruct {to_shards} shards ({insts} insts) e{epoch}"),
        EventKind::CorruptDetected { site, id, sub, .. } => {
            format!("corrupt {site:?} {id}.{sub} detected")
        }
        EventKind::CorruptRepaired {
            site, id, attempts, ..
        } => format!("corrupt {site:?} {id} repaired ({attempts} bad)"),
        EventKind::CorruptEscalated { shard, epoch } => {
            format!("corrupt escalate s{shard} e{epoch}")
        }
        EventKind::MemoCapture { epoch, .. } => format!("memo capture e{epoch}"),
        EventKind::MemoHit { epoch, .. } => format!("memo hit e{epoch}"),
        EventKind::MemoMiss { epoch, at } => format!("memo miss e{epoch}@{at}"),
        EventKind::MemoInvalidate { templates } => format!("memo invalidate ({templates})"),
        EventKind::MemoReplay { launch, pos } => format!("memo replay L{launch}[{pos}]"),
        EventKind::LogAppend { epoch, records, .. } => format!("log append e{epoch} ({records})"),
        EventKind::LogCombine { batch, records } => format!("log combine b{batch} ({records})"),
        EventKind::LogConsume { replica, batch, .. } => format!("log consume r{replica} b{batch}"),
        EventKind::JobAdmit { job, tenant, .. } => format!("job {job} admit (t{tenant})"),
        EventKind::JobShed { job, tenant, .. } => format!("job {job} shed (t{tenant})"),
        EventKind::JobRetry { job, attempt, .. } => format!("job {job} retry #{attempt}"),
        EventKind::JobDegrade {
            tenant,
            from_shards,
            to_shards,
        } => format!("degrade t{tenant} {from_shards}->{to_shards}"),
        EventKind::Pass { name } => format!("pass {name}"),
        EventKind::SimTask { kind, step, .. } => {
            format!("{} s{step}", sim_kind_name(*kind))
        }
        EventKind::Counter { name, .. } => (*name).to_string(),
        EventKind::Mark { name } => (*name).to_string(),
    }
}

fn kind_args(k: &EventKind) -> String {
    match k {
        EventKind::TaskLaunch { task, .. } | EventKind::TaskRun { task, .. } => {
            format!("\"task\":{task}")
        }
        EventKind::TaskAccess {
            region,
            inst,
            fields,
            privilege,
            ..
        } => format!(
            "\"region\":{region},\"inst\":{inst},\"fields\":{fields},\"privilege\":\"{}\"",
            priv_str(*privilege)
        ),
        EventKind::DepAnalysis { checks, .. } => format!("\"checks\":{checks}"),
        EventKind::DepEdge {
            from_launch,
            from_pos,
            to_launch,
            to_pos,
        } => format!("\"from\":\"L{from_launch}[{from_pos}]\",\"to\":\"L{to_launch}[{to_pos}]\""),
        EventKind::CopyIssue {
            seq,
            elements,
            dst_shard,
            ..
        } => format!("\"seq\":{seq},\"elements\":{elements},\"dst\":{dst_shard}"),
        EventKind::CopyApply {
            seq,
            region,
            inst,
            reduce,
            ..
        } => format!("\"seq\":{seq},\"region\":{region},\"inst\":{inst},\"reduce\":{reduce}"),
        EventKind::BarrierArrive { generation }
        | EventKind::BarrierLeave { generation }
        | EventKind::CollectiveArrive { generation }
        | EventKind::CollectiveLeave { generation } => format!("\"generation\":{generation}"),
        EventKind::SimTask { node, step, .. } => format!("\"node\":{node},\"step\":{step}"),
        EventKind::LogAppend {
            epoch,
            batch,
            records,
        } => {
            format!("\"epoch\":{epoch},\"batch\":{batch},\"records\":{records}")
        }
        EventKind::LogCombine { batch, records } => {
            format!("\"batch\":{batch},\"records\":{records}")
        }
        EventKind::LogConsume {
            replica,
            batch,
            records,
            lag,
        } => format!("\"replica\":{replica},\"batch\":{batch},\"records\":{records},\"lag\":{lag}"),
        EventKind::MemoCapture { key, tasks, .. } | EventKind::MemoHit { key, tasks, .. } => {
            format!("\"key\":{key},\"tasks\":{tasks}")
        }
        EventKind::JobAdmit { tenant, queued, .. } | EventKind::JobShed { tenant, queued, .. } => {
            format!("\"tenant\":{tenant},\"queued\":{queued}")
        }
        EventKind::JobRetry {
            tenant, attempt, ..
        } => format!("\"tenant\":{tenant},\"attempt\":{attempt}"),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::tracer::Tracer;

    #[test]
    fn export_parses_and_has_all_events() {
        let tracer = Tracer::enabled();
        let mut b = tracer.buffer("shard \"0\"\n"); // hostile name
        let t0 = b.now();
        b.instant(EventKind::TaskLaunch {
            launch: 1,
            pos: 2,
            task: 3,
        });
        b.span_since(
            t0,
            EventKind::TaskRun {
                launch: 1,
                pos: 2,
                task: 3,
            },
        );
        b.push(
            5,
            0,
            EventKind::Counter {
                name: "q",
                value: 1.25,
            },
        );
        drop(b);
        let trace = tracer.take();
        let out = export_chrome(&trace);
        let v = json::parse(&out).expect("exporter output must parse");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata + 3 events.
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("shard \"0\"\n")
        );
        // Phases present as expected.
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, vec!["M", "i", "X", "C"]);
    }

    #[test]
    fn matched_copies_get_flow_arrows() {
        let tracer = Tracer::enabled();
        let mut b = tracer.buffer("shard-0");
        b.push(
            0,
            5,
            EventKind::CopyIssue {
                copy: 3,
                pair: 1,
                seq: 0,
                elements: 8,
                dst_shard: 1,
            },
        );
        drop(b);
        let mut b = tracer.buffer("shard-1");
        b.push(
            9,
            2,
            EventKind::CopyApply {
                copy: 3,
                pair: 1,
                seq: 0,
                region: 2,
                inst: 5,
                fields: 1,
                reduce: false,
            },
        );
        drop(b);
        let out = export_chrome(&tracer.take());
        let v = json::parse(&out).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let start = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .expect("flow start");
        let finish = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .expect("flow finish");
        assert_eq!(start.get("id"), finish.get("id"));
        assert_eq!(start.get("tid").unwrap().as_num(), Some(0.0));
        assert_eq!(finish.get("tid").unwrap().as_num(), Some(1.0));
        assert_eq!(finish.get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(start.get("name").unwrap().as_str(), Some("copy 3.1"));
    }
}
