//! A minimal JSON parser — just enough to round-trip-check the Chrome
//! trace exporter without pulling in serde (the workspace builds with
//! zero external dependencies).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup (None on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document. Returns a message with a byte
/// offset on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing characters at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn lit(&mut self, s: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{s}'"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return self.err("unterminated string");
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| format!("short \\u escape at byte {}", self.i))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            self.i += 4;
                            // Surrogate pairs are not produced by our
                            // exporter; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let bytes = self
                        .b
                        .get(start..end)
                        .ok_or_else(|| format!("truncated UTF-8 at byte {start}"))?;
                    let chunk = std::str::from_utf8(bytes)
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    s.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes `s` into `out` as the body of a JSON string literal (no
/// surrounding quotes). The exporter uses this; keeping it beside the
/// parser keeps the dialect honest.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1} π";
        let mut lit = String::from('"');
        escape_into(&mut lit, original);
        lit.push('"');
        assert_eq!(parse(&lit).unwrap(), Value::Str(original.into()));
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"héllo wörld π\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld π"));
    }
}
