//! Critical-path blame attribution: *where the bound on end-to-end
//! runtime actually went*.
//!
//! [`crate::graph::EventGraph::critical_path`] finds the longest
//! duration-weighted dependence chain through a trace. This module
//! decomposes that chain into phases — dependence analysis, copies,
//! barrier/collective waits, kernel execution, memo replay — per track
//! and per epoch, which is the paper's argument rendered as a table:
//! the implicit executor's critical path is dominated by `DepAnalysis`
//! blame on the control track (O(N) per step, §1), while a
//! control-replicated run of the same program attributes that time to
//! `Exec`/`Copy` instead (O(1) per-shard launches, §3.5).
//!
//! ## Wait enrichment
//!
//! The executors record synchronization as an *arrive* event stamped
//! before the blocking wait and a zero-duration *leave* instant after
//! it, so the wait lives in the timestamp gap, not in any span. Blame
//! attribution first *enriches* the trace: every zero-duration
//! `BarrierLeave`/`CollectiveLeave` is widened to cover the gap back to
//! its matching same-track arrive, making waits path-weighted. The
//! blame components therefore sum to the critical-path length of the
//! enriched graph by construction (covered by a property test).

use crate::event::{EventKind, SimKind};
use crate::graph::build_graph;
use crate::tracer::{Trace, Track};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets in an idle-gap histogram (covers up to
/// 2^39 ns ≈ 9 minutes per gap).
pub const IDLE_BUCKETS: usize = 40;

/// The phases critical-path time is attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Control-thread dynamic dependence analysis (implicit executor).
    DepAnalysis,
    /// Dependence bookkeeping replayed from a memoized template.
    MemoReplay,
    /// Copy issue (extract + send) and apply (receive + scatter) time.
    Copy,
    /// Time blocked at a phase barrier.
    BarrierWait,
    /// Time blocked in a dynamic collective (§4.4).
    CollectiveWait,
    /// Application kernel execution.
    Exec,
    /// Shared-log control work: sequencer appends/combines and replica
    /// batch consumption (`log_exec`).
    LogControl,
    /// Time a supervised job spent in the service admission queue
    /// before a shard pool picked it up (`regent-serve`).
    QueueWait,
    /// Everything else on the path (launches, drains, checkpoints).
    Other,
}

impl Phase {
    /// Number of phases (length of a [`Blame`] vector).
    pub const COUNT: usize = 9;

    /// All phases, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::DepAnalysis,
        Phase::MemoReplay,
        Phase::Copy,
        Phase::BarrierWait,
        Phase::CollectiveWait,
        Phase::Exec,
        Phase::LogControl,
        Phase::QueueWait,
        Phase::Other,
    ];

    /// Stable snake_case name (used in bench artifacts and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::DepAnalysis => "dep_analysis",
            Phase::MemoReplay => "memo_replay",
            Phase::Copy => "copy",
            Phase::BarrierWait => "barrier_wait",
            Phase::CollectiveWait => "collective_wait",
            Phase::Exec => "exec",
            Phase::LogControl => "log_control",
            Phase::QueueWait => "queue_wait",
            Phase::Other => "other",
        }
    }

    /// Index into a [`Blame`] vector.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A per-phase decomposition of some span of time, nanoseconds.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Blame {
    /// Nanoseconds attributed to each phase, indexed by
    /// [`Phase::index`].
    pub ns: [u64; Phase::COUNT],
}

impl Blame {
    /// Nanoseconds attributed to `p`.
    pub fn get(&self, p: Phase) -> u64 {
        self.ns[p.index()]
    }

    /// Adds `ns` nanoseconds of blame to `p`.
    pub fn add(&mut self, p: Phase, ns: u64) {
        self.ns[p.index()] += ns;
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Componentwise accumulation.
    pub fn merge(&mut self, other: &Blame) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
    }
}

/// The full critical-path blame decomposition of one trace.
pub struct BlameReport {
    /// Length of the (wait-enriched) critical path, nanoseconds. Equals
    /// `total.total()` by construction.
    pub critical_path_ns: u64,
    /// Nodes on the critical path.
    pub path_nodes: usize,
    /// Whole-path blame.
    pub total: Blame,
    /// Blame per track the path visited (track name, blame), in trace
    /// track order.
    pub per_track: Vec<(String, Blame)>,
    /// Blame per epoch (the latest `StepBegin` step on the recording
    /// track; events before the first step land in epoch 0).
    pub per_epoch: Vec<(u64, Blame)>,
}

impl BlameReport {
    /// Renders the blame table: one row per phase with share of the
    /// critical path, then per-track and per-epoch sections.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "critical path: {:.3} ms over {} nodes",
            self.critical_path_ns as f64 / 1e6,
            self.path_nodes
        )
        .unwrap();
        writeln!(out, "{:>16}  {:>14}  {:>6}", "phase", "ns", "%").unwrap();
        let total = self.critical_path_ns.max(1);
        // Every phase prints, including 0.0% rows: blame tables from
        // different strategies stay column-aligned and diffable.
        for p in Phase::ALL {
            let ns = self.total.get(p);
            writeln!(
                out,
                "{:>16}  {:>14}  {:>5.1}%",
                p.name(),
                ns,
                ns as f64 * 100.0 / total as f64
            )
            .unwrap();
        }
        if !self.per_track.is_empty() {
            writeln!(out, "-- per track --").unwrap();
            for (name, b) in &self.per_track {
                writeln!(out, "{:>16}  {:>14}  {}", name, b.total(), top_phase(b)).unwrap();
            }
        }
        if !self.per_epoch.is_empty() {
            writeln!(out, "-- per epoch --").unwrap();
            for (epoch, b) in &self.per_epoch {
                writeln!(out, "{:>16}  {:>14}  {}", epoch, b.total(), top_phase(b)).unwrap();
            }
        }
        out
    }
}

fn top_phase(b: &Blame) -> &'static str {
    Phase::ALL
        .into_iter()
        .max_by_key(|p| b.get(*p))
        .filter(|p| b.get(*p) > 0)
        .map(Phase::name)
        .unwrap_or("-")
}

/// Which phase a critical-path node's duration belongs to.
pub fn classify(kind: &EventKind) -> Phase {
    match kind {
        EventKind::DepAnalysis { .. } => Phase::DepAnalysis,
        EventKind::MemoReplay { .. } => Phase::MemoReplay,
        EventKind::TaskRun { .. } => Phase::Exec,
        EventKind::CopyIssue { .. } | EventKind::CopyApply { .. } => Phase::Copy,
        EventKind::BarrierArrive { .. } | EventKind::BarrierLeave { .. } => Phase::BarrierWait,
        EventKind::CollectiveArrive { .. } | EventKind::CollectiveLeave { .. } => {
            Phase::CollectiveWait
        }
        EventKind::LogAppend { .. }
        | EventKind::LogCombine { .. }
        | EventKind::LogConsume { .. } => Phase::LogControl,
        EventKind::JobAdmit { .. } => Phase::QueueWait,
        _ => Phase::Other,
    }
}

/// Clones `trace` with synchronization waits made path-weighted: each
/// zero-duration `BarrierLeave`/`CollectiveLeave` is moved back to its
/// matching same-track arrive's timestamp and widened to cover the gap
/// (see module docs).
pub fn enrich_waits(trace: &Trace) -> Trace {
    let tracks = trace
        .tracks
        .iter()
        .map(|t| {
            let mut last_bar: Option<u64> = None;
            let mut last_col: Option<u64> = None;
            let events = t
                .events
                .iter()
                .map(|e| {
                    let mut e = *e;
                    match e.kind {
                        EventKind::BarrierArrive { .. } => last_bar = Some(e.ts),
                        EventKind::CollectiveArrive { .. } => last_col = Some(e.ts),
                        EventKind::BarrierLeave { .. } if e.dur == 0 => {
                            if let Some(a) = last_bar.take() {
                                e.dur = e.ts.saturating_sub(a);
                                e.ts = a;
                            }
                        }
                        EventKind::CollectiveLeave { .. } if e.dur == 0 => {
                            if let Some(a) = last_col.take() {
                                e.dur = e.ts.saturating_sub(a);
                                e.ts = a;
                            }
                        }
                        _ => {}
                    }
                    e
                })
                .collect();
            Track {
                name: t.name.clone(),
                events,
                dropped: t.dropped,
            }
        })
        .collect();
    Trace { tracks }
}

/// Computes the critical-path blame decomposition of `trace`. `Err`
/// means the trace is not a well-formed execution record (see
/// [`build_graph`]).
pub fn blame_report(trace: &Trace) -> Result<BlameReport, String> {
    let enriched = enrich_waits(trace);
    // Epoch of each event: the latest StepBegin on the same track.
    let mut step_of: Vec<Vec<u64>> = Vec::with_capacity(enriched.tracks.len());
    for t in &enriched.tracks {
        let mut cur = 0u64;
        let mut v = Vec::with_capacity(t.events.len());
        for e in &t.events {
            if let EventKind::StepBegin { step } = e.kind {
                cur = step;
            }
            v.push(cur);
        }
        step_of.push(v);
    }
    let g = build_graph(&enriched)?;
    let (critical_path_ns, path) = g.critical_path();
    let mut total = Blame::default();
    let mut per_track: BTreeMap<usize, Blame> = BTreeMap::new();
    let mut per_epoch: BTreeMap<u64, Blame> = BTreeMap::new();
    for &v in &path {
        let node = &g.nodes[v as usize];
        let dur = node.event.dur;
        if dur == 0 {
            continue;
        }
        let phase = classify(&node.event.kind);
        total.add(phase, dur);
        per_track.entry(node.track).or_default().add(phase, dur);
        let epoch = step_of[node.track][node.idx];
        per_epoch.entry(epoch).or_default().add(phase, dur);
    }
    Ok(BlameReport {
        critical_path_ns,
        path_nodes: path.len(),
        total,
        per_track: per_track
            .into_iter()
            .map(|(ti, b)| (enriched.tracks[ti].name.clone(), b))
            .collect(),
        per_epoch: per_epoch.into_iter().collect(),
    })
}

/// Max/mean shard busy time and the idle-gap distribution — the
/// load-imbalance companion to the blame table.
pub struct ImbalanceReport {
    /// Tracks measured (shard/worker tracks when present, else every
    /// track with at least one span).
    pub tracks: usize,
    /// Busiest track's total span time, nanoseconds.
    pub max_busy_ns: u64,
    /// Mean span time over the measured tracks, nanoseconds.
    pub mean_busy_ns: f64,
    /// `max_busy_ns / mean_busy_ns` (1.0 = perfectly balanced, 0 when
    /// nothing was measured).
    pub imbalance: f64,
    /// Histogram of gaps between consecutive spans on the same track:
    /// bucket `i` counts gaps in `[2^i, 2^(i+1))` nanoseconds.
    pub idle_hist: [u64; IDLE_BUCKETS],
}

impl ImbalanceReport {
    /// Renders the imbalance summary plus the nonempty histogram rows.
    pub fn format(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "load imbalance over {} tracks: max busy {:.3} ms, mean {:.3} ms, max/mean {:.2}",
            self.tracks,
            self.max_busy_ns as f64 / 1e6,
            self.mean_busy_ns / 1e6,
            self.imbalance
        )
        .unwrap();
        for (i, &c) in self.idle_hist.iter().enumerate() {
            if c > 0 {
                writeln!(out, "  idle [{}, {}) ns: {}", 1u64 << i, 1u64 << (i + 1), c).unwrap();
            }
        }
        out
    }
}

fn log2_bucket(ns: u64) -> usize {
    ((63 - ns.leading_zeros()) as usize).min(IDLE_BUCKETS - 1)
}

/// Computes the load-imbalance report for `trace`. Shard and worker
/// tracks (`shard-*` / `worker-*`) are measured when present;
/// otherwise every track carrying at least one span counts.
pub fn imbalance_report(trace: &Trace) -> ImbalanceReport {
    let executor_tracks: Vec<&Track> = trace
        .tracks
        .iter()
        .filter(|t| t.name.starts_with("shard-") || t.name.starts_with("worker-"))
        .collect();
    let tracks: Vec<&Track> = if executor_tracks.is_empty() {
        trace
            .tracks
            .iter()
            .filter(|t| t.events.iter().any(|e| e.dur > 0))
            .collect()
    } else {
        executor_tracks
    };
    let mut max_busy_ns = 0u64;
    let mut sum_busy = 0u64;
    let mut idle_hist = [0u64; IDLE_BUCKETS];
    for t in &tracks {
        let busy: u64 = t.events.iter().map(|e| e.dur).sum();
        max_busy_ns = max_busy_ns.max(busy);
        sum_busy += busy;
        // Idle gaps between consecutive spans, in timestamp order.
        let mut spans: Vec<(u64, u64)> = t
            .events
            .iter()
            .filter(|e| e.dur > 0)
            .map(|e| (e.ts, e.ts + e.dur))
            .collect();
        spans.sort_unstable();
        let mut frontier: Option<u64> = None;
        for (start, end) in spans {
            if let Some(f) = frontier {
                if start > f {
                    idle_hist[log2_bucket(start - f)] += 1;
                }
            }
            frontier = Some(frontier.map_or(end, |f| f.max(end)));
        }
    }
    let n = tracks.len();
    let mean_busy_ns = if n == 0 {
        0.0
    } else {
        sum_busy as f64 / n as f64
    };
    ImbalanceReport {
        tracks: n,
        max_busy_ns,
        mean_busy_ns,
        imbalance: if mean_busy_ns > 0.0 {
            max_busy_ns as f64 / mean_busy_ns
        } else {
            0.0
        },
        idle_hist,
    }
}

/// Blame decomposition of a *simulated* schedule (a track of `SimTask`
/// spans in virtual time): per step, the node with the largest total
/// service bounds that step, and its per-kind service decomposes it.
/// Returns `(total bound ns, blame)`, or `None` if the track is
/// missing or carries no sim tasks.
pub fn sim_blame(trace: &Trace, track: &str) -> Option<(u64, Blame)> {
    let t = trace.track(track)?;
    // (step, node) -> per-phase service.
    let mut per: BTreeMap<(u32, u32), Blame> = BTreeMap::new();
    for e in &t.events {
        if let EventKind::SimTask { kind, node, step } = e.kind {
            let phase = match kind {
                SimKind::Analysis => Phase::DepAnalysis,
                SimKind::Compute => Phase::Exec,
                SimKind::Copy => Phase::Copy,
                SimKind::Collective => Phase::CollectiveWait,
                SimKind::Log => Phase::LogControl,
                SimKind::Launch | SimKind::Other => Phase::Other,
            };
            per.entry((step, node)).or_default().add(phase, e.dur);
        }
    }
    if per.is_empty() {
        return None;
    }
    let mut blame = Blame::default();
    let mut cur_step = None;
    let mut step_max: Option<Blame> = None;
    let flush = |sm: &mut Option<Blame>, blame: &mut Blame| {
        if let Some(b) = sm.take() {
            blame.merge(&b);
        }
    };
    for ((step, _), b) in per {
        if cur_step != Some(step) {
            flush(&mut step_max, &mut blame);
            cur_step = Some(step);
        }
        let better = match &step_max {
            None => true,
            Some(m) => b.total() > m.total(),
        };
        if better {
            step_max = Some(b);
        }
    }
    flush(&mut step_max, &mut blame);
    Some((blame.total(), blame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(ts: u64, dur: u64, kind: EventKind) -> Event {
        Event { ts, dur, kind }
    }

    fn run(l: u32, p: u32) -> EventKind {
        EventKind::TaskRun {
            launch: l,
            pos: p,
            task: 0,
        }
    }

    fn launch(l: u32, p: u32) -> EventKind {
        EventKind::TaskLaunch {
            launch: l,
            pos: p,
            task: 0,
        }
    }

    fn trace_of(tracks: Vec<(&str, Vec<Event>)>) -> Trace {
        Trace {
            tracks: tracks
                .into_iter()
                .map(|(name, events)| Track {
                    name: name.into(),
                    events,
                    dropped: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn chain_with_barrier_wait() {
        // run(10) ... barrier arrive@10, leave@25 (15 ns wait) ... run(5).
        let trace = trace_of(vec![(
            "shard-0",
            vec![
                ev(0, 10, run(0, 0)),
                ev(10, 0, EventKind::BarrierArrive { generation: 0 }),
                ev(25, 0, EventKind::BarrierLeave { generation: 0 }),
                ev(25, 5, run(1, 0)),
            ],
        )]);
        let r = blame_report(&trace).unwrap();
        assert_eq!(r.critical_path_ns, 30);
        assert_eq!(r.total.get(Phase::Exec), 15);
        assert_eq!(r.total.get(Phase::BarrierWait), 15);
        assert_eq!(r.total.total(), r.critical_path_ns);
    }

    #[test]
    fn diamond_attributes_analysis_and_longest_arm() {
        let trace = trace_of(vec![
            (
                "control",
                vec![
                    ev(0, 0, launch(0, 0)),
                    ev(
                        0,
                        50,
                        EventKind::DepAnalysis {
                            launch: 0,
                            pos: 0,
                            checks: 1,
                        },
                    ),
                    ev(50, 0, launch(1, 0)),
                    ev(
                        50,
                        1,
                        EventKind::DepAnalysis {
                            launch: 1,
                            pos: 0,
                            checks: 1,
                        },
                    ),
                    ev(80, 0, EventKind::Drain),
                ],
            ),
            ("worker-0", vec![ev(51, 10, run(0, 0))]),
            ("worker-1", vec![ev(51, 20, run(1, 0))]),
        ]);
        let r = blame_report(&trace).unwrap();
        // launch0 -> analysis0(50) -> launch1 -> run1(20) -> drain.
        assert_eq!(r.critical_path_ns, 70);
        assert_eq!(r.total.get(Phase::DepAnalysis), 50);
        assert_eq!(r.total.get(Phase::Exec), 20);
        assert_eq!(r.total.total(), r.critical_path_ns);
        // Track attribution: analysis on control, exec on worker-1.
        let control = r.per_track.iter().find(|(n, _)| n == "control").unwrap();
        assert_eq!(control.1.get(Phase::DepAnalysis), 50);
        let w1 = r.per_track.iter().find(|(n, _)| n == "worker-1").unwrap();
        assert_eq!(w1.1.get(Phase::Exec), 20);
    }

    #[test]
    fn fork_join_copies_are_copy_blame() {
        let trace = trace_of(vec![
            (
                "shard-0",
                vec![
                    ev(0, 10, run(0, 0)),
                    ev(
                        10,
                        5,
                        EventKind::CopyIssue {
                            copy: 0,
                            pair: 0,
                            seq: 0,
                            elements: 4,
                            dst_shard: 1,
                        },
                    ),
                ],
            ),
            (
                "shard-1",
                vec![
                    ev(
                        20,
                        8,
                        EventKind::CopyApply {
                            copy: 0,
                            pair: 0,
                            seq: 0,
                            region: 1,
                            inst: 7,
                            fields: 1,
                            reduce: false,
                        },
                    ),
                    ev(28, 4, run(1, 0)),
                ],
            ),
        ]);
        let r = blame_report(&trace).unwrap();
        assert_eq!(r.critical_path_ns, 27);
        assert_eq!(r.total.get(Phase::Copy), 13);
        assert_eq!(r.total.get(Phase::Exec), 14);
    }

    #[test]
    fn per_epoch_splits_at_step_begin() {
        let trace = trace_of(vec![(
            "shard-0",
            vec![
                ev(0, 0, EventKind::StepBegin { step: 0 }),
                ev(0, 10, run(0, 0)),
                ev(10, 0, EventKind::StepBegin { step: 1 }),
                ev(10, 30, run(1, 0)),
            ],
        )]);
        let r = blame_report(&trace).unwrap();
        assert_eq!(r.per_epoch.len(), 2);
        assert_eq!(
            r.per_epoch[0],
            (0, {
                let mut b = Blame::default();
                b.add(Phase::Exec, 10);
                b
            })
        );
        assert_eq!(r.per_epoch[1].1.get(Phase::Exec), 30);
    }

    #[test]
    fn blame_sums_to_critical_path_on_random_traces() {
        // Deterministic pseudo-random chains/forks: components must sum
        // to the critical-path length for every generated trace.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let workers = 1 + (next() % 4) as usize;
            let launches = 1 + (next() % 12) as u32;
            let mut control = Vec::new();
            let mut worker_events: Vec<Vec<Event>> = vec![Vec::new(); workers];
            let mut ts = 0u64;
            for l in 0..launches {
                control.push(ev(ts, 0, launch(l, 0)));
                let analysis = next() % 40;
                control.push(ev(
                    ts,
                    analysis,
                    EventKind::DepAnalysis {
                        launch: l,
                        pos: 0,
                        checks: 1,
                    },
                ));
                ts += analysis;
                let w = (next() % workers as u64) as usize;
                worker_events[w].push(ev(ts + next() % 10, next() % 100, run(l, 0)));
            }
            control.push(ev(ts, 0, EventKind::Drain));
            let mut tracks = vec![("control".to_string(), control)];
            for (w, evs) in worker_events.into_iter().enumerate() {
                tracks.push((format!("worker-{w}"), evs));
            }
            let trace = Trace {
                tracks: tracks
                    .into_iter()
                    .map(|(name, events)| Track {
                        name,
                        events,
                        dropped: 0,
                    })
                    .collect(),
            };
            let r = blame_report(&trace).unwrap();
            assert_eq!(
                r.total.total(),
                r.critical_path_ns,
                "blame components must sum to the critical-path length"
            );
            let per_track_sum: u64 = r.per_track.iter().map(|(_, b)| b.total()).sum();
            let per_epoch_sum: u64 = r.per_epoch.iter().map(|(_, b)| b.total()).sum();
            assert_eq!(per_track_sum, r.critical_path_ns);
            assert_eq!(per_epoch_sum, r.critical_path_ns);
        }
    }

    #[test]
    fn imbalance_ignores_non_shard_tracks_when_shards_exist() {
        let trace = trace_of(vec![
            ("shard-0", vec![ev(0, 100, run(0, 0))]),
            ("shard-1", vec![ev(0, 20, run(0, 1)), ev(80, 20, run(1, 1))]),
            (
                "hybrid",
                vec![ev(0, 100_000, EventKind::Pass { name: "x" })],
            ),
        ]);
        let r = imbalance_report(&trace);
        assert_eq!(r.tracks, 2);
        assert_eq!(r.max_busy_ns, 100);
        assert!((r.mean_busy_ns - 70.0).abs() < 1e-9);
        assert!((r.imbalance - 100.0 / 70.0).abs() < 1e-9);
        // shard-1 idles from 40 to 80: one gap of 60 ns in bucket 5.
        assert_eq!(r.idle_hist[5], 1);
        assert_eq!(r.idle_hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn sim_blame_takes_the_bounding_node_per_step() {
        let sim = |kind, node, step| EventKind::SimTask { kind, node, step };
        let trace = trace_of(vec![(
            "cr/n2",
            vec![
                // Step 0: node 0 does 30 (20 compute + 10 copy), node 1
                // does 5. Step 1: node 1 does 40 analysis.
                ev(0, 20, sim(SimKind::Compute, 0, 0)),
                ev(20, 10, sim(SimKind::Copy, 0, 0)),
                ev(0, 5, sim(SimKind::Compute, 1, 0)),
                ev(30, 40, sim(SimKind::Analysis, 1, 1)),
            ],
        )]);
        let (total, blame) = sim_blame(&trace, "cr/n2").unwrap();
        assert_eq!(total, 70);
        assert_eq!(blame.get(Phase::Exec), 20);
        assert_eq!(blame.get(Phase::Copy), 10);
        assert_eq!(blame.get(Phase::DepAnalysis), 40);
        assert!(sim_blame(&trace, "missing").is_none());
    }
}
