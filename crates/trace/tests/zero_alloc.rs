//! Proves the "zero-cost when disabled" claim: recording through a
//! disabled tracer performs no heap allocation at all.
//!
//! This lives alone in its own integration-test binary because it
//! installs a counting `#[global_allocator]`, which must not interfere
//! with other tests.

use regent_trace::{EventKind, PrivCode, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

#[test]
fn disabled_tracer_never_allocates() {
    let tracer = Tracer::disabled(); // Arc: allocates once, before measuring
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut buf = tracer.buffer("worker-0");
    for i in 0..10_000u32 {
        let t0 = buf.now();
        buf.instant(EventKind::TaskLaunch {
            launch: i,
            pos: 0,
            task: 0,
        });
        buf.push(
            0,
            0,
            EventKind::TaskAccess {
                launch: i,
                pos: 0,
                region: 1,
                inst: 2,
                fields: 1,
                privilege: PrivCode::Write,
            },
        );
        buf.span_since(
            t0,
            EventKind::TaskRun {
                launch: i,
                pos: 0,
                task: 0,
            },
        );
        buf.flush();
    }
    drop(buf);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled-mode recording must not allocate"
    );
    assert_eq!(tracer.take().num_events(), 0);
}
