//! End-to-end: record a small synthetic execution, export it as Chrome
//! trace JSON, and parse it back with the in-crate parser.

use regent_trace::{export_chrome, json, EventKind, PrivCode, Tracer};

#[test]
fn chrome_export_round_trips_through_parser() {
    let tracer = Tracer::enabled();
    {
        let mut control = tracer.buffer("control");
        let mut worker = tracer.buffer("worker-0");
        for step in 0..3u64 {
            control.instant(EventKind::StepBegin { step });
            for launch in 0..4u32 {
                let l = step as u32 * 4 + launch;
                control.instant(EventKind::TaskLaunch {
                    launch: l,
                    pos: 0,
                    task: 7,
                });
                control.push(
                    control.now(),
                    0,
                    EventKind::TaskAccess {
                        launch: l,
                        pos: 0,
                        region: 3,
                        inst: 0xdead,
                        fields: 0b11,
                        privilege: PrivCode::Write,
                    },
                );
                let t0 = worker.now();
                worker.span_since(
                    t0,
                    EventKind::TaskRun {
                        launch: l,
                        pos: 0,
                        task: 7,
                    },
                );
            }
            control.instant(EventKind::Drain);
            control.push(
                control.now(),
                0,
                EventKind::Counter {
                    name: "window",
                    value: step as f64,
                },
            );
        }
    }
    let trace = tracer.take();
    let total = trace.num_events();
    assert!(total > 0);

    let out = export_chrome(&trace);
    let v = json::parse(&out).expect("chrome export must be valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    // Every recorded event plus one thread_name metadata per track.
    assert_eq!(events.len(), total + trace.tracks.len());
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "X" | "i" | "C" | "M"), "unexpected ph {ph}");
        assert!(e.get("pid").is_some());
        assert!(e.get("tid").is_some());
        if ph != "M" {
            // Timestamps must be numeric microseconds.
            assert!(e.get("ts").unwrap().as_num().is_some());
        }
    }
}
